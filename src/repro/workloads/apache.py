"""apache — the httpd server plus the ``ab`` load injector (§5.3).

Two applications: httpd running 100 worker threads, and ``ab``, a
single-threaded client that keeps 100 requests outstanding.  The paper
traces the 40 % single-core gap to thread preemption: under CFS every
response wakes ``ab``, and every request sent by ``ab`` wakes an httpd
worker *which preempts ab* (2 million preemptions over the benchmark);
under ULE ``ab`` is never preempted and drains/sends requests in
batches.  Each preemption costs real CPU (direct cost + cache
pollution), modelled by the engine's ``ctx_switch_cost_ns``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import Run, ThreadSpec
from ..core.clock import NSEC_PER_SEC, usec
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class ApacheWorkload(Workload):
    """httpd worker pool + single-threaded ab in closed loop."""

    app = "apache"

    def __init__(self, nworkers: int = 100, outstanding: int = 100,
                 total_requests: int = 20_000,
                 service_ns: int = usec(35),
                 ab_work_ns: int = usec(10),
                 name: str = "apache"):
        super().__init__(name)
        self.nworkers = nworkers
        self.outstanding = outstanding
        self.total_requests = total_requests
        self.service_ns = service_ns
        self.ab_work_ns = ab_work_ns
        self.completed = 0
        self.finished_at = None
        self.sent = 0
        self._requests = None
        self._responses = None
        self.ab_thread = None

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.channel import Channel
        self._requests = Channel(engine, "apache.req")
        self._responses = Channel(engine, "apache.rsp")
        for i in range(self.nworkers):
            self.spawn(engine, ThreadSpec(
                f"httpd/{i}", self._httpd_behavior), at=at)
        self.ab_thread = self.spawn(engine, ThreadSpec(
            "ab", self._ab_behavior), at=at)

    def _httpd_behavior(self, ctx):
        while True:
            req = yield self._requests.get()
            if req is None:
                return
            yield Run(self.service_ns)
            self.completed += 1
            if self.finished and self.finished_at is None:
                self.finished_at = ctx.now
            yield self._responses.put(ctx.now)

    def _ab_behavior(self, ctx):
        # Initial burst of `outstanding` requests.
        for _ in range(self.outstanding):
            yield Run(self.ab_work_ns)
            yield self._requests.put(ctx.now)
            self.sent += 1
        # Closed loop: process each response, then send a new request.
        # Under CFS the `put` wakes a worker that preempts ab
        # immediately; under ULE ab keeps the CPU and batches.
        while self.sent < self.total_requests:
            yield self._responses.get()
            yield Run(self.ab_work_ns)
            yield self._requests.put(ctx.now)
            self.sent += 1
        # Drain the outstanding tail and shut the workers down.
        for _ in range(self.outstanding):
            yield self._responses.get()
        for _ in range(self.nworkers):
            yield self._requests.put(None)

    @property
    def finished(self) -> bool:
        return self.completed >= self.total_requests

    def done(self, engine: "Engine") -> bool:
        return self.finished

    def performance(self, engine: "Engine") -> float:
        """Requests served per second (up to the last request)."""
        end = self.finished_at if self.finished_at is not None \
            else engine.now
        elapsed = end - (self._launched_at or 0)
        if elapsed <= 0:
            return 0.0
        return self.completed * NSEC_PER_SEC / elapsed

    def ab_preemptions(self, engine: "Engine") -> int:
        """How often ab was involuntarily switched out (§5.3: 2 million
        times on CFS, never on ULE)."""
        return self.ab_thread.nr_preemptions if self.ab_thread else 0
