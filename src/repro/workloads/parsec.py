"""The PARSEC benchmark suite (§4.2, §6.4).

Parallel applications with more varied structure than NAS:

* data-parallel barrier apps (blackscholes, fluidanimate,
  streamcluster, facesim, bodytrack, canneal);
* independent compute (swaptions, freqmine, raytrace, vips, x264 —
  modelled at the granularity that matters to the scheduler);
* **ferret**, a 4-stage pipeline whose stages block on queues — the
  paper's example of an *interactive* application under ULE that does
  not scale to 32 cores (§6.4: ferret keeps priority over blackscholes
  and is unaffected by co-scheduling, while blackscholes loses >80 %).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import Run, ThreadSpec
from ..core.clock import NSEC_PER_SEC, msec, usec
from .base import BarrierWorkload, ComputeWorkload, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class PipelineWorkload(Workload):
    """A multi-stage software pipeline connected by queues.

    ``stage_threads`` threads per stage pull an item, process it
    (``stage_work_ns``), and push it downstream.  Stage threads block
    while their input queue is empty, so they sleep often and classify
    interactive under ULE.
    """

    def __init__(self, app: str, nstages: int = 4,
                 stage_threads: int = 4, items: int = 400,
                 stage_work_ns: int = msec(2),
                 input_interval_ns: int = 0,
                 name: Optional[str] = None):
        self.app = app
        super().__init__(name)
        self.nstages = nstages
        self.stage_threads = stage_threads
        self.items = items
        self.stage_work_ns = stage_work_ns
        #: pacing of item arrivals (0 = as fast as possible); a paced
        #: pipeline keeps its stage threads mostly sleeping, which is
        #: what classifies ferret as interactive under ULE (§6.4)
        self.input_interval_ns = input_interval_ns
        self.completed = 0
        self.finished_at = None
        self._queues: list = []

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.channel import Channel
        self._queues = [Channel(engine, f"{self.app}.q{i}")
                        for i in range(self.nstages + 1)]
        self.spawn(engine, ThreadSpec(
            f"{self.app}/input", self._input_behavior), at=at)
        for stage in range(self.nstages):
            for i in range(self.stage_threads):
                self.spawn(engine, ThreadSpec(
                    f"{self.app}/s{stage}t{i}",
                    self._stage_behavior(stage)), at=at)
        self.spawn(engine, ThreadSpec(
            f"{self.app}/output", self._output_behavior), at=at)

    def _input_behavior(self, ctx):
        from ..core.actions import Sleep
        for i in range(self.items):
            yield Run(usec(50))
            if self.input_interval_ns:
                yield Sleep(self.input_interval_ns)
            yield self._queues[0].put(i)
        for _ in range(self.stage_threads):
            yield self._queues[0].put(None)

    def _stage_behavior(self, stage: int):
        def behavior(ctx):
            src = self._queues[stage]
            dst = self._queues[stage + 1]
            while True:
                item = yield src.get()
                if item is None:
                    yield dst.put(None)
                    return
                yield Run(self.stage_work_ns)
                yield dst.put(item)
        return behavior

    def _output_behavior(self, ctx):
        pills = 0
        while pills < self.stage_threads:
            item = yield self._queues[-1].get()
            if item is None:
                pills += 1
                continue
            self.completed += 1
            if self.completed >= self.items and self.finished_at is None:
                self.finished_at = ctx.now

    def performance(self, engine: "Engine") -> float:
        """Items per second (up to the last item)."""
        end = self.finished_at if self.finished_at is not None \
            else engine.now
        elapsed = end - (self._launched_at or 0)
        if elapsed <= 0:
            return 0.0
        return self.completed * NSEC_PER_SEC / elapsed

    def done(self, engine: "Engine") -> bool:
        return self.completed >= self.items


# ----------------------------------------------------------------------
# concrete PARSEC applications
# ----------------------------------------------------------------------

def blackscholes():
    """Option pricing, 16 data-parallel threads."""
    # data-parallel option pricing; does not scale to 32 cores (§6.4),
    # so cap its parallelism below the machine size.
    return BarrierWorkload(app="blackscholes", nthreads=16, iterations=30,
                           phase_ns=msec(40), imbalance=0.02)


def bodytrack():
    """Vision pipeline with small I/O phases."""
    return BarrierWorkload(app="bodytrack", nthreads=None, iterations=36,
                           phase_ns=msec(25), io_ns=msec(2),
                           imbalance=0.05)


def canneal():
    """Simulated annealing with barrier phases."""
    return BarrierWorkload(app="canneal", nthreads=None, iterations=24,
                           phase_ns=msec(45), imbalance=0.04)


def facesim():
    """Physics simulation with long barrier phases."""
    return BarrierWorkload(app="facesim", nthreads=None, iterations=20,
                           phase_ns=msec(55), imbalance=0.05)


def ferret():
    """Similarity-search pipeline (queues between stages)."""
    # the pipeline: 4 stages, blocks on queues, sleeps a lot
    return PipelineWorkload(app="ferret", nstages=4, stage_threads=4,
                            items=600, stage_work_ns=msec(2))


def fluidanimate():
    """Fluid dynamics, 16 threads, short phases."""
    return BarrierWorkload(app="fluidanimate", nthreads=16,
                           iterations=48, phase_ns=msec(18),
                           imbalance=0.03)


def freqmine():
    """Frequent itemset mining: independent compute."""
    return ComputeWorkload(app="freqmine", nthreads=None,
                           work_ns=msec(1100), chunk_ns=msec(20),
                           jitter=0.05)


def raytrace():
    """Ray tracer: imbalanced independent compute."""
    return ComputeWorkload(app="raytrace", nthreads=None,
                           work_ns=msec(1200), chunk_ns=msec(15),
                           jitter=0.10)


def streamcluster():
    """Online clustering, 16 threads, short phases."""
    return BarrierWorkload(app="streamcluster", nthreads=16,
                           iterations=80, phase_ns=msec(15),
                           imbalance=0.02)


def swaptions():
    """Monte-Carlo pricing: independent compute."""
    return ComputeWorkload(app="swaptions", nthreads=None,
                           work_ns=msec(1000), chunk_ns=msec(25),
                           jitter=0.02)


def vips():
    """Image pipeline modelled as independent compute."""
    return ComputeWorkload(app="vips", nthreads=None, work_ns=msec(900),
                           chunk_ns=msec(10), jitter=0.05)


def x264():
    """Video encoder: shallow frame pipeline."""
    # frame pipeline with dependencies: modelled as a shallow pipeline
    return PipelineWorkload(app="x264", nstages=2, stage_threads=8,
                            items=800, stage_work_ns=msec(1))


PARSEC_APPS = {
    "blackscholes": blackscholes, "bodytrack": bodytrack,
    "canneal": canneal, "facesim": facesim, "ferret": ferret,
    "fluidanimate": fluidanimate, "freqmine": freqmine,
    "raytrace": raytrace, "streamcluster": streamcluster,
    "swaptions": swaptions, "vips": vips, "x264": x264,
}
