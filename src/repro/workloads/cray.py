"""c-ray — the Fig. 7 thread-placement workload (§6.2).

C-ray creates 512 threads (unpinned; the scheduler places each), which
all wait on a *cascading* barrier — thread 0 wakes thread 1, thread 1
wakes thread 2, ... — before computing.  Two effects the paper
observes:

* ULE forks every thread onto the least-loaded core, so the load is
  balanced from the start; CFS's load-based placement is noisier.
* Threads are created with different inherited interactivity (the
  creator runs while forking, like sysbench's master), so under ULE
  some threads in the wake-up chain are batch and starve behind
  interactive siblings — it takes ~11 s for all threads to become
  runnable, versus ~2 s on CFS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import Fork, Run, ThreadSpec
from ..core.clock import msec, sec, NSEC_PER_SEC
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class CrayWorkload(Workload):
    """Master forks ``nthreads`` workers; cascading barrier; compute."""

    app = "c-ray"

    def __init__(self, nthreads: int = 512,
                 fork_spacing_ns: Optional[int] = None,
                 compute_ns: int = msec(400),
                 chunk_ns: int = msec(20),
                 name: str = "c-ray"):
        super().__init__(name)
        self.nthreads = nthreads
        if fork_spacing_ns is None:
            # Scene setup costs ~3 s of master CPU regardless of the
            # thread count, so the inherited-penalty gradient crosses
            # the interactivity threshold mid-herd (the §5.2 effect).
            fork_spacing_ns = sec(3) // nthreads
        self.fork_spacing_ns = fork_spacing_ns
        self.compute_ns = compute_ns
        self.chunk_ns = chunk_ns
        self._cascade = None
        self.workers: list = []

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.barrier import CascadingBarrier
        # parties = workers + master (the master arrives last and
        # releases the chain)
        self._cascade = CascadingBarrier(engine, self.nthreads + 1,
                                         name="c-ray.barrier")
        self.spawn(engine, ThreadSpec(
            f"{self.app}/master", self._master_behavior), at=at)

    def _master_behavior(self, ctx):
        # Fork all workers while computing scene setup (no sleeping:
        # interactivity inheritance drifts toward batch, like §5.2).
        for i in range(self.nthreads):
            yield Run(self.fork_spacing_ns)
            worker = yield Fork(ThreadSpec(
                f"{self.app}/worker{i}", self._worker_behavior(i)))
            self.workers.append(worker)
        # Master joins the barrier last, releasing the cascade.
        yield from self._cascade.wait(self.nthreads)

    def _worker_behavior(self, index: int):
        def behavior(ctx):
            yield from self._cascade.wait(index)
            remaining = self.compute_ns
            while remaining > 0:
                chunk = min(self.chunk_ns, remaining)
                yield Run(chunk)
                remaining -= chunk
        return behavior

    # -- analysis ----------------------------------------------------------

    def wake_times(self) -> dict[int, int]:
        """When each thread in the cascade was woken (Fig. 7's
        "time until all threads are runnable")."""
        return dict(self._cascade.wake_times) if self._cascade else {}

    def all_runnable_at(self) -> Optional[int]:
        """Instant the last thread of the cascade was released."""
        times = self.wake_times()
        if len(times) < self.nthreads + 1:
            return None
        return max(times.values())

    def performance(self, engine: "Engine") -> float:
        return NSEC_PER_SEC / self.completion_time(engine)
