"""Structured execution traces and Chrome-trace export.

Attach a :class:`TraceLog` to an engine to record every context
switch, wakeup, and migration as structured records.  The log can be
exported as Chrome's Trace Event JSON (``chrome://tracing`` /
Perfetto): one row per CPU, one slice per scheduled interval — the
same kind of visualization kernel developers use with
``trace-cmd``/KernelShark, which is how the paper's authors inspected
their schedules.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


@dataclass(frozen=True)
class SwitchRecord:
    time_ns: int
    cpu: int
    prev: Optional[str]
    next: Optional[str]


@dataclass(frozen=True)
class WakeRecord:
    time_ns: int
    thread: str
    cpu: int
    waker: Optional[str]


@dataclass(frozen=True)
class MigrationRecord:
    time_ns: int
    thread: str
    src: int
    dst: int


class TraceLog:
    """Recorder of scheduling events, with bounded memory."""

    def __init__(self, engine: "Engine", max_records: int = 200_000):
        self.engine = engine
        self.max_records = max_records
        self.switches: list[SwitchRecord] = []
        self.wakes: list[WakeRecord] = []
        self.migrations: list[MigrationRecord] = []
        self.dropped = 0
        engine.tracer.on_switch.append(self._on_switch)
        engine.tracer.on_wake.append(self._on_wake)
        engine.tracer.on_migrate.append(self._on_migrate)

    def _room(self) -> bool:
        total = (len(self.switches) + len(self.wakes)
                 + len(self.migrations))
        if total >= self.max_records:
            self.dropped += 1
            return False
        return True

    def _on_switch(self, core, prev, nxt) -> None:
        if self._room():
            self.switches.append(SwitchRecord(
                self.engine.now, core.index,
                prev.name if prev else None,
                nxt.name if nxt else None))

    def _on_wake(self, thread, cpu, waker) -> None:
        if self._room():
            self.wakes.append(WakeRecord(
                self.engine.now, thread.name, cpu,
                waker.name if waker else None))

    def _on_migrate(self, thread, src, dst) -> None:
        if self._room():
            self.migrations.append(MigrationRecord(
                self.engine.now, thread.name, src, dst))

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    def intervals(self) -> list[tuple]:
        """``(cpu, thread, start_ns, end_ns)`` scheduled intervals,
        reconstructed from the switch log."""
        open_slices: dict[int, tuple] = {}
        out = []
        for rec in self.switches:
            started = open_slices.pop(rec.cpu, None)
            if started is not None:
                name, start = started
                out.append((rec.cpu, name, start, rec.time_ns))
            if rec.next is not None:
                open_slices[rec.cpu] = (rec.next, rec.time_ns)
        for cpu, (name, start) in open_slices.items():
            out.append((cpu, name, start, self.engine.now))
        return out

    def timeline_of(self, thread_name: str) -> list[tuple]:
        """The scheduled intervals of one thread."""
        return [iv for iv in self.intervals() if iv[1] == thread_name]

    # ------------------------------------------------------------------
    # Chrome Trace Event export
    # ------------------------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Serialize as Trace Event JSON (load in chrome://tracing or
        https://ui.perfetto.dev)."""
        events = []
        for cpu, name, start, end in self.intervals():
            events.append({
                "name": name,
                "cat": "sched",
                "ph": "X",                    # complete event
                "ts": start / 1000.0,         # microseconds
                "dur": max(0.001, (end - start) / 1000.0),
                "pid": 0,
                "tid": cpu,
            })
        for rec in self.wakes:
            events.append({
                "name": f"wake:{rec.thread}",
                "cat": "wakeup",
                "ph": "i",                    # instant event
                "s": "t",
                "ts": rec.time_ns / 1000.0,  # schedlint: ignore[float-ns-clock]
                "pid": 0,
                "tid": rec.cpu,
            })
        for rec in self.migrations:
            events.append({
                "name": f"migrate:{rec.thread} {rec.src}->{rec.dst}",
                "cat": "migration",
                "ph": "i",
                "s": "p",
                "ts": rec.time_ns / 1000.0,  # schedlint: ignore[float-ns-clock]
                "pid": 0,
                "tid": rec.dst,
            })
        meta = [{
            "name": "thread_name", "ph": "M", "pid": 0, "tid": cpu,
            "args": {"name": f"cpu{cpu}"},
        } for cpu in range(len(self.engine.machine))]
        return json.dumps({"traceEvents": meta + events,
                           "displayTimeUnit": "ms"})

    def write_chrome_trace(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path`` atomically."""
        from ..core.artifacts import atomic_write_text
        atomic_write_text(path, self.to_chrome_trace())
