"""Periodic samplers: turn live engine state into time series.

The paper's figures are all time series of scheduler-internal state —
cumulative runtime per application (Figs. 1, 3), interactivity penalty
(Figs. 2, 4), runnable threads per core (Figs. 6, 7).  A sampler posts
itself on the event queue at a fixed period and records into the
engine's :class:`~repro.core.metrics.TimeSeries`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class PeriodicSampler:
    """Runs ``probe(engine)`` every ``period_ns``; the probe records
    whatever series it wants."""

    def __init__(self, engine: "Engine", period_ns: int,
                 probe: Callable[["Engine"], None], label: str = "sampler"):
        self.engine = engine
        self.period_ns = period_ns
        self.probe = probe
        self.label = label
        self._stopped = False
        self._arm()

    def _arm(self) -> None:
        self.engine.events.post(self.engine.now + self.period_ns,
                                self._fire, label=self.label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.probe(self.engine)
        self._arm()

    def stop(self) -> None:
        """Stop sampling after the current pending event."""
        self._stopped = True


def sample_threads_per_core(engine: "Engine",
                            period_ns: int) -> PeriodicSampler:
    """Record ``core<i>.nr_threads`` series (Figs. 6 and 7)."""
    def probe(eng: "Engine") -> None:
        for core in eng.machine.cores:
            eng.metrics.series(f"core{core.index}.nr_threads").record(
                eng.now, eng.scheduler.nr_runnable(core))
    return PeriodicSampler(engine, period_ns, probe, "threads-per-core")


def sample_cumulative_runtime(engine: "Engine", period_ns: int,
                              apps: Iterable[str]) -> PeriodicSampler:
    """Record ``runtime.<app>`` series in seconds (Fig. 1)."""
    apps = list(apps)

    def probe(eng: "Engine") -> None:
        for app in apps:
            total = sum(t.total_runtime for t in eng.threads_of_app(app))
            eng.metrics.series(f"runtime.{app}").record(eng.now, total)
    return PeriodicSampler(engine, period_ns, probe, "cumulative-runtime")


def sample_thread_runtime(engine: "Engine", period_ns: int,
                          threads: Iterable["SimThread"],
                          prefix: str = "runtime") -> PeriodicSampler:
    """Record per-thread cumulative runtime (Fig. 3)."""
    threads = list(threads)

    def probe(eng: "Engine") -> None:
        for thread in threads:
            eng.metrics.series(f"{prefix}.t{thread.tid}").record(
                eng.now, thread.total_runtime)
    return PeriodicSampler(engine, period_ns, probe, "thread-runtime")


def sample_ule_penalty(engine: "Engine", period_ns: int,
                       groups: dict[str, Callable[[], list]],
                       ) -> PeriodicSampler:
    """Record the mean ULE interactivity penalty of thread groups
    (Figs. 2 and 4).  ``groups`` maps a series suffix to a callable
    returning the group's threads (evaluated each sample, so late-
    forked threads are included)."""
    def probe(eng: "Engine") -> None:
        for label, get_threads in groups.items():
            threads = [t for t in get_threads() if t.policy is not None
                       and hasattr(t.policy, "hist")]
            if not threads:
                continue
            mean_pen = sum(t.policy.hist.penalty()
                           for t in threads) / len(threads)
            eng.metrics.series(f"penalty.{label}").record(eng.now, mean_pen)
    return PeriodicSampler(engine, period_ns, probe, "ule-penalty")
