"""Per-decision trace export: every ``pick_next`` as a data record.

Where :func:`~repro.tracing.digest.schedule_digest` compresses a whole
run into one hash, this module exports the *decisions* that produced
it: one record per ``pick_next`` call, with the candidate set the
scheduler saw and which candidate it chose.  The records are
digest-adjacent by construction — identified by **spawn index** (the
thread's position in engine spawn order, the same tid-free identity
``canonical_state`` uses), never by ``tid`` or ``id()`` — so two
bit-identical runs export byte-identical traces.

This is the KernelOracle-style "schedules as data" hook: the
:mod:`repro.sched.predictive` table model trains on exported CFS
records, and ``repro-sched run --decisions out.jsonl`` captures them
for any scheduler.

Candidate features (all buckets are log2-coarse so tables stay small):

==============  =====================================================
``nice``        the thread's nice value
``incumbent``   1 if the candidate is the core's running thread
``wait``        log2 bucket of time spent waiting for CPU (µs)
``ran``         log2 bucket of total executed time (ms)
``+relative``   three flags ranking the candidate within this
                decision's set: longest wait, lowest nice, least
                executed (see :func:`decision_features`)
==============  =====================================================

Attachment wraps ``engine.scheduler.pick_next`` (an instance-attribute
override, transparent to the scheduler): decisions are observed at
the exact call boundary the engine uses, with zero cost when not
attached.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional

from ..core.clock import msec, usec


def _log2_bucket(value: int, unit: int) -> int:
    """``value`` (ns) coarsened to a log2 bucket of ``unit``."""
    return (value // unit).bit_length()


def candidate_features(engine, core, thread) -> tuple:
    """The absolute feature tuple for one pick candidate."""
    waited = 0 if thread.wait_start is None \
        else engine.now - thread.wait_start
    return (
        thread.nice,
        1 if thread is core.current and thread.is_running else 0,
        _log2_bucket(waited, usec(1)),
        _log2_bucket(thread.total_runtime, msec(1)),
    )


def decision_features(engine, core, candidates) -> list:
    """Per-candidate feature rows for one decision: the absolute
    tuple from :func:`candidate_features` extended with three
    *relative* flags — longest wait, lowest nice, least executed —
    computed within this candidate set.  Relative standing is what a
    queue discipline actually ranks by (CFS's pick is roughly "least
    runtime among the queued"), and a table scoring candidates
    independently cannot recover it from absolute buckets alone."""
    base = [candidate_features(engine, core, t) for t in candidates]
    if len(base) > 1:
        max_wait = max(f[2] for f in base)
        min_nice = min(f[0] for f in base)
        min_ran = min(f[3] for f in base)
        return [f + (1 if f[2] == max_wait else 0,
                     1 if f[0] == min_nice else 0,
                     1 if f[3] == min_ran else 0)
                for f in base]
    return [f + (1, 1, 1) for f in base]


class DecisionRecord:
    """One ``pick_next`` decision (tid-free)."""

    __slots__ = ("t_ns", "cpu", "candidates", "features", "chosen")

    def __init__(self, t_ns: int, cpu: int, candidates: List[int],
                 features: List[tuple], chosen: Optional[int]):
        self.t_ns = t_ns
        self.cpu = cpu
        #: spawn index per candidate, in runqueue order
        self.candidates = candidates
        #: feature tuple per candidate (same order)
        self.features = features
        #: spawn index of the picked thread (None = core idled;
        #: a pick outside ``candidates`` was stolen cross-core)
        self.chosen = chosen

    def contested(self) -> bool:
        """True when the decision had a real choice to make."""
        return len(self.candidates) >= 2 and self.chosen is not None \
            and self.chosen in self.candidates

    def to_json(self) -> dict:
        """One JSONL-ready dict (inverse of :meth:`from_json`)."""
        return {"t": self.t_ns, "cpu": self.cpu,
                "candidates": self.candidates,
                "features": [list(f) for f in self.features],
                "chosen": self.chosen}

    @classmethod
    def from_json(cls, obj: dict) -> "DecisionRecord":
        return cls(obj["t"], obj["cpu"], list(obj["candidates"]),
                   [tuple(f) for f in obj["features"]],
                   obj["chosen"])


class DecisionTrace:
    """Recorder wrapping one engine's ``pick_next``.

    Use :func:`attach_decision_trace`; records accumulate in
    ``self.records`` and can be streamed with ``write_jsonl``.
    """

    def __init__(self, engine):
        self.engine = engine
        self.records: List[DecisionRecord] = []
        self._spawn_index: dict = {}
        self._inner = engine.scheduler.pick_next

    def _index_of(self, thread) -> int:
        idx = self._spawn_index.get(thread.tid)
        if idx is None:
            for i, t in enumerate(self.engine.threads):
                self._spawn_index.setdefault(t.tid, i)
            idx = self._spawn_index[thread.tid]
        return idx

    def pick_next(self, core):
        """The wrapper installed over the scheduler's ``pick_next``:
        records the decision, never alters the pick."""
        engine = self.engine
        sched = engine.scheduler
        candidates = list(sched.runnable_threads(core))
        features = decision_features(engine, core, candidates)
        chosen = self._inner(core)
        self.records.append(DecisionRecord(
            t_ns=engine.now, cpu=core.index,
            candidates=[self._index_of(t) for t in candidates],
            features=features,
            chosen=None if chosen is None else self._index_of(chosen)))
        return chosen

    def detach(self) -> None:
        """Remove the wrapper, restoring the scheduler's own hook."""
        if self.engine.scheduler.pick_next == self.pick_next:
            del self.engine.scheduler.pick_next

    def write_jsonl(self, fh: IO[str]) -> int:
        """Stream all records as JSON lines; returns the count."""
        for rec in self.records:
            fh.write(json.dumps(rec.to_json(), sort_keys=True) + "\n")
        return len(self.records)


def attach_decision_trace(engine) -> DecisionTrace:
    """Record every scheduling decision of ``engine`` from now on.

    Must be called before ``engine.run()``; the wrapper observes the
    engine's real ``pick_next`` boundary and never alters the pick.
    """
    trace = DecisionTrace(engine)
    # instance-attribute override: unwraps cleanly via detach()
    engine.scheduler.pick_next = trace.pick_next
    return trace


def read_jsonl(fh: IO[str]) -> List[DecisionRecord]:
    """Parse records produced by :meth:`DecisionTrace.write_jsonl`."""
    return [DecisionRecord.from_json(json.loads(line))
            for line in fh if line.strip()]
