"""Render time series as CSV and quick ASCII charts.

The benchmark harness prints the same series the paper plots; these
helpers keep the output readable in a terminal and loadable into any
plotting tool.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.metrics import TimeSeries


def series_to_csv(series_list: Sequence["TimeSeries"]) -> str:
    """Merge series on their own timestamps into long-format CSV
    (``series,time_ns,value``)."""
    out = io.StringIO()
    out.write("series,time_ns,value\n")
    for series in series_list:
        for t, v in series:
            out.write(f"{series.name},{t},{v}\n")
    return out.getvalue()


def ascii_chart(series: "TimeSeries", width: int = 64, height: int = 12,
                title: Optional[str] = None) -> str:
    """A minimal scatter-over-time chart for terminal output."""
    lines = []
    if title:
        lines.append(title)
    if len(series) == 0:
        lines.append("(no data)")
        return "\n".join(lines)
    t0, t1 = series.times[0], series.times[-1]
    v0, v1 = min(series.values), max(series.values)
    tspan = max(1, t1 - t0)
    vspan = (v1 - v0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in series:
        x = min(width - 1, int((t - t0) * (width - 1) / tspan))
        y = min(height - 1, int((v - v0) * (height - 1) / vspan))
        grid[height - 1 - y][x] = "*"
    lines.append(f"{v1:>12.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{v0:>12.3g} +" + "-" * width)
    lines.append(" " * 14 + f"{t0 / 1e9:<10.2f}{'time (s)':^44}"
                 f"{t1 / 1e9:>10.2f}")
    return "\n".join(lines)


def downsample(series: "TimeSeries", max_points: int = 200) -> list[tuple]:
    """Evenly thin a series for compact printing."""
    n = len(series)
    if n <= max_points:
        return list(series)
    step = n / max_points
    picked = []
    i = 0.0
    while int(i) < n:
        idx = int(i)
        picked.append((series.times[idx], series.values[idx]))
        i += step
    return picked
