"""Derived views over recorded series: per-core occupancy heatlines.

Fig. 6 and Fig. 7 are heatmaps of threads-per-core over time; this
module turns the ``core<i>.nr_threads`` series into a compact textual
heatmap and summary statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.metrics import MetricRegistry

#: shade ramp used for the textual heatmap
_SHADES = " .:-=+*#%@"


def core_count_matrix(metrics: "MetricRegistry",
                      ncores: int) -> tuple[list[int], list[list[float]]]:
    """Return ``(times, matrix)`` with ``matrix[core][i]`` = threads on
    ``core`` at ``times[i]``, from the threads-per-core sampler."""
    base = metrics.series("core0.nr_threads")
    times = list(base.times)
    matrix = []
    for core in range(ncores):
        series = metrics.series(f"core{core}.nr_threads")
        matrix.append(list(series.values[:len(times)]))
    return times, matrix


def heatmap(metrics: "MetricRegistry", ncores: int, width: int = 72,
            vmax: Optional[float] = None) -> str:
    """A Fig. 6-style heatmap: one text row per core, shade = thread
    count."""
    times, matrix = core_count_matrix(metrics, ncores)
    if not times:
        return "(no samples)"
    if vmax is None:
        vmax = max((max(row) if row else 0.0) for row in matrix) or 1.0
    npoints = len(times)
    step = max(1, npoints // width)
    lines = []
    for core, row in enumerate(matrix):
        cells = []
        for i in range(0, npoints, step):
            window = row[i:i + step]
            value = max(window) if window else 0.0
            shade_idx = min(len(_SHADES) - 1,
                            int(value / vmax * (len(_SHADES) - 1)))
            cells.append(_SHADES[shade_idx])
        lines.append(f"core {core:>2} |{''.join(cells)}|")
    t0, t1 = times[0] / 1e9, times[-1] / 1e9
    lines.append(f"         {t0:<8.1f}{'time (s)':^56}{t1:>8.1f}")
    lines.append(f"         shade: ' '=0 .. '@'={vmax:.0f} threads")
    return "\n".join(lines)


def imbalance_over_time(metrics: "MetricRegistry",
                        ncores: int) -> list[tuple[int, float]]:
    """``(time, max-min)`` spread of threads per core at each sample."""
    times, matrix = core_count_matrix(metrics, ncores)
    out = []
    for i, t in enumerate(times):
        column = [row[i] for row in matrix if i < len(row)]
        if column:
            out.append((t, max(column) - min(column)))
    return out
