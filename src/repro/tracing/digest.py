"""Compact canonical schedule digests.

A digest is a short hex string that is a pure function of the schedule
an engine produced: same (workload, scheduler, seed) => same digest, on
any host, in any worker process, with tickless on or off.  It hashes
:meth:`repro.core.engine.Engine.canonical_state`, which deliberately
excludes process-global identifiers (raw tids) and bookkeeping that may
differ between equivalent runs (events processed, tick stops).

The golden-trace regression store (``tests/golden/digests.json``,
managed by ``python -m repro.testing golden`` / ``make golden``) pins
one digest per experiment cell; differential and metamorphic tests use
:func:`schedule_digest` to compare whole schedules in O(1) space.
"""

from __future__ import annotations

import hashlib
import json

DIGEST_LEN = 16  # hex chars; 64 bits of sha256 is plenty for regression


def canonical_json(state: dict) -> str:
    """Serialise a canonical-state dict reproducibly (sorted keys, no
    whitespace, no float formatting surprises — the state is all ints
    and strings by construction)."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def schedule_digest(engine) -> str:
    """Digest of the schedule *engine* has produced so far."""
    return state_digest(engine.canonical_state())


def state_digest(state: dict) -> str:
    """Digest of an already-extracted canonical state."""
    blob = canonical_json(state).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:DIGEST_LEN]
