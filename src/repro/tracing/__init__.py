"""Observation tooling: periodic samplers, series export, and derived
timeline views."""

from .decisions import (DecisionRecord, DecisionTrace,
                        attach_decision_trace)
from .digest import canonical_json, schedule_digest, state_digest
from .export import ascii_chart, downsample, series_to_csv
from .samplers import (PeriodicSampler, sample_cumulative_runtime,
                       sample_threads_per_core, sample_thread_runtime,
                       sample_ule_penalty)
from .timeline import core_count_matrix, heatmap, imbalance_over_time
from .tracelog import (MigrationRecord, SwitchRecord, TraceLog,
                       WakeRecord)

__all__ = [
    "PeriodicSampler",
    "sample_threads_per_core",
    "sample_cumulative_runtime",
    "sample_thread_runtime",
    "sample_ule_penalty",
    "series_to_csv",
    "ascii_chart",
    "downsample",
    "core_count_matrix",
    "heatmap",
    "imbalance_over_time",
    "TraceLog",
    "SwitchRecord",
    "WakeRecord",
    "MigrationRecord",
    "canonical_json",
    "schedule_digest",
    "state_digest",
    "DecisionRecord",
    "DecisionTrace",
    "attach_decision_trace",
]
