"""Tests for CFS task groups (per-application fairness)."""

import pytest

from repro.cfs.cgroup import TaskGroup
from repro.cfs.params import CfsTunables
from repro.cfs.weights import MIN_WEIGHT, NICE_0_LOAD
from repro.core import Engine, ThreadSpec, run_forever
from repro.core.clock import msec, sec
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory


def spin(ctx):
    yield run_forever()


# ------------------------------------------------------------- unit level

def make_groups(ncpus=2):
    tun = CfsTunables()
    root = TaskGroup("root", ncpus, tun)
    child = TaskGroup("app", ncpus, tun, parent=root)
    return root, child


def test_root_group_has_no_entities():
    root, child = make_groups()
    assert root.is_root
    assert root.entity_on(0) is None
    assert child.entity_on(0) is not None
    assert child.entity_on(0).my_rq is child.rq_on(0)


def test_group_weight_follows_load_distribution():
    root, child = make_groups(ncpus=2)
    # all of the group's queued weight on cpu 0
    from repro.cfs.entity import SchedEntity
    se = SchedEntity(weight=NICE_0_LOAD)
    child.rq_on(0).enqueue_entity(se)
    assert child.group_weight_on(0) == child.shares
    assert child.group_weight_on(1) == MIN_WEIGHT
    # split across both cpus -> half the shares each
    se2 = SchedEntity(weight=NICE_0_LOAD)
    child.rq_on(1).enqueue_entity(se2)
    assert child.group_weight_on(0) == child.shares // 2


def test_group_weight_empty_group_uses_full_shares():
    _, child = make_groups()
    assert child.group_weight_on(0) == child.shares


# ------------------------------------------------------ integration level

def test_hierarchy_nr_running_consistency():
    eng = Engine(single_core(), scheduler_factory("cfs"), seed=2)
    for app in ("a", "b"):
        for i in range(3):
            eng.spawn(ThreadSpec(f"{app}{i}", spin, app=app))
    eng.run(until=msec(50))
    sched = eng.scheduler
    core = eng.machine.cores[0]
    assert sched.nr_runnable(core) == 6
    root = core.rq.root
    # root holds two group entities, each group rq holds three tasks
    assert root.h_nr_running == 6
    assert root.nr_running == 2
    for app in ("a", "b"):
        rq = sched._app_groups[app].rq_on(0)
        assert rq.nr_running == 3


def test_two_apps_split_core_regardless_of_thread_count():
    """3-thread app vs 1-thread app: ~50/50 with autogroup."""
    eng = Engine(single_core(), scheduler_factory("cfs"), seed=2)
    big = [eng.spawn(ThreadSpec(f"big{i}", spin, app="big"))
           for i in range(3)]
    small = eng.spawn(ThreadSpec("small", spin, app="small"))
    eng.run(until=sec(3))
    big_total = sum(t.total_runtime for t in big)
    assert big_total == pytest.approx(sec(1.5), rel=0.12)
    assert small.total_runtime == pytest.approx(sec(1.5), rel=0.12)
    # within the big app, threads are mutually fair
    for t in big:
        assert t.total_runtime == pytest.approx(big_total / 3, rel=0.2)


def test_group_cleanup_when_threads_sleep():
    """A group whose threads all block leaves the root timeline."""
    from repro.core import Run, Sleep

    def napper(ctx):
        yield Run(msec(5))
        yield Sleep(msec(100))
        yield Run(msec(5))

    eng = Engine(single_core(), scheduler_factory("cfs"), seed=2)
    eng.spawn(ThreadSpec("hog", spin, app="hog"))
    eng.spawn(ThreadSpec("nap", napper, app="nap"))
    eng.run(until=msec(60))
    core = eng.machine.cores[0]
    root = core.rq.root
    # only the hog's group remains queued
    assert root.h_nr_running == 1
    nap_gse = eng.scheduler._app_groups["nap"].entity_on(0)
    assert not nap_gse.on_rq


def test_groups_per_cpu_on_multicore():
    eng = Engine(smp(2), scheduler_factory("cfs"), seed=2)
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, app="app"))
          for i in range(4)]
    eng.run(until=sec(1))
    group = eng.scheduler._app_groups["app"]
    # the group entity exists independently per CPU and both carry load
    assert sum(group.rq_on(c).nr_running for c in range(2)) == 4
    for cpu in range(2):
        if group.rq_on(cpu).nr_running:
            assert group.entity_on(cpu).on_rq
