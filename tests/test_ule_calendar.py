"""Tests for ULE's calendar (timeshare) runqueue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Engine, ThreadSpec, run_forever
from repro.core.clock import msec, sec
from repro.core.errors import SchedulerError
from repro.core.topology import single_core
from repro.sched import scheduler_factory
from repro.ule.runq import CalendarRunQueue


class FakeThread:
    _n = 0

    def __init__(self, name):
        FakeThread._n += 1
        self.tid = FakeThread._n
        self.name = name


def test_calendar_basic_fifo():
    cal = CalendarRunQueue(8)
    a, b = FakeThread("a"), FakeThread("b")
    cal.add(a, 0)
    cal.add(b, 0)
    assert cal.choose() is a
    assert cal.choose() is b
    assert cal.choose() is None


def test_calendar_priority_spreads_around_circle():
    cal = CalendarRunQueue(8)
    near, far = FakeThread("near"), FakeThread("far")
    cal.add(far, 5)
    cal.add(near, 1)
    assert cal.choose() is near
    assert cal.choose() is far


def test_calendar_rotation_bounds_waiting():
    """After the insertion origin rotates, a previously 'far' thread
    becomes 'near': no batch thread waits more than one lap."""
    cal = CalendarRunQueue(8)
    laggard = FakeThread("laggard")
    cal.add(laggard, 7)  # worst priority: 7 buckets away
    # rotate the insertion origin; new arrivals at priority 0 now land
    # *behind* the laggard's bucket once the origin passes it
    for _ in range(7):
        cal.advance()
    eager = FakeThread("eager")
    cal.add(eager, 0)  # lands at bucket (7+0)%8 = 7, behind laggard
    assert cal.choose() is laggard
    assert cal.choose() is eager


def test_calendar_at_head_resumes_first():
    cal = CalendarRunQueue(8)
    a, b = FakeThread("a"), FakeThread("b")
    cal.add(a, 2)
    cal.add(b, 0, at_head=True)  # preempted thread resumes first
    assert cal.choose() is b


def test_calendar_remove():
    cal = CalendarRunQueue(8)
    a, b = FakeThread("a"), FakeThread("b")
    cal.add(a, 3)
    cal.add(b, 3)
    cal.remove(a)
    assert len(cal) == 1
    assert cal.choose() is b
    with pytest.raises(SchedulerError):
        cal.remove(a)


def test_calendar_first_priority_distance():
    cal = CalendarRunQueue(8)
    assert cal.first_priority() is None
    cal.add(FakeThread("x"), 4)
    assert cal.first_priority() == 4
    cal.add(FakeThread("y"), 1)
    assert cal.first_priority() == 1


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                min_size=1, max_size=40),
       st.integers(0, 20))
def test_property_calendar_conserves_threads(adds, rotations):
    cal = CalendarRunQueue(64)
    threads = []
    for pri, head in adds:
        t = FakeThread("t")
        cal.add(t, pri, at_head=head)
        threads.append(t)
        cal.check_invariants()
    for _ in range(rotations):
        cal.advance()
    drained = []
    while cal:
        drained.append(cal.choose())
        cal.check_invariants()
    assert sorted(t.tid for t in drained) == \
        sorted(t.tid for t in threads)


def test_batch_threads_share_core_via_calendar():
    """End to end: two batch hogs with *different* batch priorities
    still share the core (the calendar prevents batch-vs-batch
    starvation, §2.2)."""
    eng = Engine(single_core(), scheduler_factory("ule"), seed=8)

    def spin(ctx):
        yield run_forever()

    # a heavy hog plus a nice-10 hog: worse batch priority, but the
    # calendar still cycles to it every lap
    a = eng.spawn(ThreadSpec("a", spin, nice=0))
    b = eng.spawn(ThreadSpec("b", spin, nice=10))
    eng.run(until=sec(10))
    assert b.total_runtime > sec(1)
    assert a.total_runtime > b.total_runtime * 0.8
