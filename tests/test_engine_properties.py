"""Property-based tests of engine-level invariants, run under all
three schedulers.

Invariants:

* **work conservation** — total runtime accumulated by threads equals
  total core busy time;
* **no lost threads** — every runnable thread is on exactly one
  runqueue; exited threads are on none;
* **completion** — finite workloads always finish, and each thread
  executes exactly the work it asked for;
* **determinism** — identical seeds give identical schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec
from repro.core.topology import smp
from repro.sched import scheduler_factory
from tests.conftest import SCHEDULERS, behavior_from_plan


plan_strategy = st.lists(
    st.tuples(st.sampled_from(["run", "sleep"]), st.integers(1, 20)),
    min_size=1, max_size=6)


@pytest.mark.parametrize("sched", SCHEDULERS)
@settings(max_examples=20, deadline=None)
@given(plans=st.lists(plan_strategy, min_size=1, max_size=6),
       ncpus=st.sampled_from([1, 2, 4]))
def test_property_work_conservation_and_completion(sched, plans, ncpus):
    engine = Engine(smp(ncpus), scheduler_factory(sched), seed=3)
    threads = [
        engine.spawn(ThreadSpec(f"t{i}", behavior_from_plan(plan)))
        for i, plan in enumerate(plans)
    ]
    reason = engine.run(until=sec(30))
    assert reason == "all-exited"
    # each thread executed exactly its requested work
    for thread, plan in zip(threads, plans):
        want_run = sum(msec(d) for k, d in plan if k == "run")
        want_sleep = sum(msec(d) for k, d in plan if k == "sleep")
        assert thread.total_runtime == want_run
        assert thread.total_sleeptime == want_sleep
    # work conservation: busy time == executed time
    for core in engine.machine.cores:
        core.account_to_now()
    busy = sum(c.busy_ns for c in engine.machine.cores)
    executed = sum(t.total_runtime for t in threads)
    assert busy == executed


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_runqueue_membership_invariant(sched):
    """At arbitrary instants, runnable threads are each on exactly one
    runqueue; blocked/exited threads on none."""
    engine = Engine(smp(4), scheduler_factory(sched), seed=9)

    def worker(ctx):
        for _ in range(30):
            yield Run(msec(2))
            yield Sleep(msec(3))

    threads = [engine.spawn(ThreadSpec(f"w{i}", worker))
               for i in range(12)]
    for checkpoint in range(1, 10):
        engine.run(until=checkpoint * msec(17))
        seen = {}
        for core in engine.machine.cores:
            for t in engine.scheduler.runnable_threads(core):
                assert t.tid not in seen, \
                    f"{t} on two runqueues ({seen[t.tid]}, {core.index})"
                seen[t.tid] = core.index
        for t in threads:
            if t.is_runnable:
                assert t.tid in seen, f"runnable {t} not on any rq"
            else:
                assert t.tid not in seen, f"blocked {t} still queued"


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_determinism_same_seed_same_schedule(sched):
    def run_once():
        engine = Engine(smp(2), scheduler_factory(sched), seed=77)

        def worker(ctx):
            for _ in range(20):
                yield Run(msec(1 + ctx.thread.tid % 3))
                yield Sleep(msec(2))

        threads = [engine.spawn(ThreadSpec(f"w{i}", worker))
                   for i in range(6)]
        engine.run(until=sec(2))
        return [(t.total_runtime, t.nr_switches, t.nr_migrations)
                for t in threads]

    assert run_once() == run_once()


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_no_starvation_of_equal_batch_threads(sched):
    """Identical always-runnable threads all make progress (both
    schedulers are fair among equals)."""
    from repro.core import run_forever
    engine = Engine(smp(2), scheduler_factory(sched), seed=11)
    threads = [engine.spawn(ThreadSpec(
        f"w{i}", lambda ctx: iter([run_forever()]), app="same"))
        for i in range(8)]
    engine.run(until=sec(5))
    for t in threads:
        assert t.total_runtime > msec(200), f"{t.name} starved"
