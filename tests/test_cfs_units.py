"""Unit tests for CFS building blocks: weights, PELT, runqueue,
domains, tunables."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import msec, sec
from repro.cfs.domains import build_domains
from repro.cfs.entity import SchedEntity
from repro.cfs.params import CfsTunables
from repro.cfs.pelt import HALF_LIFE_NS, LoadAvg, decay_factor
from repro.cfs.runqueue import CfsRq
from repro.cfs.weights import (NICE_0_LOAD, calc_delta_fair,
                               nice_to_weight)
from repro.core.topology import opteron_6172, single_core, smp


# ----------------------------------------------------------------- weights

def test_nice_zero_is_1024():
    assert nice_to_weight(0) == NICE_0_LOAD


def test_weight_monotonic_in_priority():
    weights = [nice_to_weight(n) for n in range(-20, 20)]
    assert weights == sorted(weights, reverse=True)


def test_each_nice_step_is_about_25_percent():
    for nice in range(-20, 19):
        ratio = nice_to_weight(nice) / nice_to_weight(nice + 1)
        assert 1.18 < ratio < 1.32


def test_nice_out_of_range():
    with pytest.raises(ValueError):
        nice_to_weight(20)
    with pytest.raises(ValueError):
        nice_to_weight(-21)


def test_calc_delta_fair_scales_inverse_to_weight():
    # nice 0: wall speed
    assert calc_delta_fair(1000, NICE_0_LOAD) == 1000
    # heavier threads accumulate vruntime slower
    assert calc_delta_fair(1000, nice_to_weight(-5)) < 1000
    # lighter threads faster
    assert calc_delta_fair(1000, nice_to_weight(5)) > 1000


# ----------------------------------------------------------------- PELT

def test_decay_half_life():
    assert math.isclose(decay_factor(HALF_LIFE_NS), 0.5, rel_tol=1e-9)
    assert math.isclose(decay_factor(2 * HALF_LIFE_NS), 0.25,
                        rel_tol=1e-9)
    assert decay_factor(0) == 1.0


def test_load_avg_rises_when_running():
    avg = LoadAvg(NICE_0_LOAD, now=0)
    avg.update(msec(320), running=True)  # 10 half-lives
    assert avg.util_avg > 0.999
    assert avg.load_avg == pytest.approx(NICE_0_LOAD, rel=1e-2)


def test_load_avg_decays_when_idle():
    avg = LoadAvg(NICE_0_LOAD, now=0)
    avg.update(msec(320), running=True)
    avg.update(msec(320) + HALF_LIFE_NS, running=False)
    assert avg.util_avg == pytest.approx(0.5, rel=1e-2)


def test_peek_does_not_mutate():
    avg = LoadAvg(NICE_0_LOAD, now=0)
    avg.update(msec(32), running=True)
    before = avg.util_avg
    avg.peek(msec(64), running=False)
    assert avg.util_avg == before


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 50_000_000), st.booleans()),
                min_size=1, max_size=30))
def test_property_util_stays_in_unit_interval(steps):
    avg = LoadAvg(NICE_0_LOAD, now=0)
    now = 0
    for delta, running in steps:
        now += delta
        avg.update(now, running)
        assert 0.0 <= avg.util_avg <= 1.0


# ----------------------------------------------------------------- runqueue

def make_rq():
    return CfsRq(0, CfsTunables())


def make_se(vruntime=0, weight=NICE_0_LOAD):
    se = SchedEntity(thread=None, weight=weight)
    se.vruntime = vruntime
    return se


def test_enqueue_pick_leftmost():
    rq = make_rq()
    a, b, c = make_se(30), make_se(10), make_se(20)
    for se in (a, b, c):
        rq.enqueue_entity(se)
    assert rq.pick_first() is b
    assert rq.nr_running == 3
    assert rq.load_weight == 3 * NICE_0_LOAD


def test_set_next_removes_from_tree():
    rq = make_rq()
    a, b = make_se(10), make_se(20)
    rq.enqueue_entity(a)
    rq.enqueue_entity(b)
    rq.set_next(a)
    assert rq.curr is a
    assert rq.pick_first() is b
    rq.put_prev(a)
    assert rq.pick_first() is a


def test_min_vruntime_monotonic():
    rq = make_rq()
    a = make_se(100)
    rq.enqueue_entity(a)
    rq.update_min_vruntime()
    assert rq.min_vruntime == 100
    rq.dequeue_entity(a)
    b = make_se(50)
    rq.enqueue_entity(b)
    rq.update_min_vruntime()
    # never goes backwards
    assert rq.min_vruntime == 100


def test_place_entity_initial_is_ahead():
    rq = make_rq()
    a = make_se(0)
    rq.enqueue_entity(a)
    rq.update_min_vruntime()
    child = make_se(0)
    rq.place_entity(child, initial=True)
    assert child.vruntime > rq.min_vruntime


def test_place_entity_wakeup_gets_credit_but_not_unbounded():
    tun = CfsTunables()
    rq = make_rq()
    runner = make_se(sec(10))
    rq.enqueue_entity(runner)
    rq.update_min_vruntime()
    sleeper = make_se(0)  # slept for ages, ancient vruntime
    rq.place_entity(sleeper, initial=False)
    credit = tun.sched_latency_ns // 2
    assert sleeper.vruntime == rq.min_vruntime - credit
    # a barely-slept entity keeps its own (higher) vruntime
    fresh = make_se(sec(10) + msec(1))
    rq.place_entity(fresh, initial=False)
    assert fresh.vruntime == sec(10) + msec(1)


def test_sched_period_matches_paper():
    tun = CfsTunables()
    # "for a core executing fewer than 8 threads the default time
    # period is 48ms"
    assert tun.sched_period(1) == msec(48)
    assert tun.sched_period(8) == msec(48)
    # "when a core executes more than 8 threads ... 6 * nr ms"
    assert tun.sched_period(9) == msec(54)
    assert tun.sched_period(80) == msec(480)


def test_sched_slice_divides_by_weight():
    rq = make_rq()
    a, b = make_se(0), make_se(0, weight=nice_to_weight(-5))
    rq.enqueue_entity(a)
    rq.enqueue_entity(b)
    sa = rq.sched_slice(a)
    sb = rq.sched_slice(b)
    assert sa + sb == pytest.approx(msec(48), rel=0.01)
    assert sb > sa


def test_skip_hint_prefers_second():
    rq = make_rq()
    a, b = make_se(10), make_se(20)
    rq.enqueue_entity(a)
    rq.enqueue_entity(b)
    rq.skip = a
    assert rq.pick_first() is b
    # with nothing else queued, the skipped entity still runs
    rq.dequeue_entity(b)
    rq.skip = a
    assert rq.pick_first() is a


def test_reweight_keeps_tree_consistent():
    rq = make_rq()
    a, b = make_se(10), make_se(20)
    rq.enqueue_entity(a)
    rq.enqueue_entity(b)
    rq.reweight_entity(a, 2048)
    assert rq.load_weight == 2048 + NICE_0_LOAD
    assert rq.pick_first() is a
    rq.tree.check_invariants()


# ----------------------------------------------------------------- domains

def test_domains_on_paper_machine():
    tun = CfsTunables()
    domains = build_domains(0, opteron_6172(), tun)
    # LLC == NUMA node on the Opteron: two non-degenerate levels.
    assert [d.name for d in domains] == ["llc", "machine"]
    llc, machine = domains
    assert llc.span == frozenset(range(8))
    assert len(llc.groups) == 8  # singleton CPUs
    assert machine.span == frozenset(range(32))
    assert len(machine.groups) == 4  # the NUMA nodes
    assert machine.imbalance_pct == tun.imbalance_pct_numa
    assert llc.imbalance_pct == tun.imbalance_pct_llc
    # wider domains are balanced less often
    assert machine.interval_ns > llc.interval_ns


def test_domains_single_core():
    domains = build_domains(0, single_core(), CfsTunables())
    assert domains == []


def test_domains_local_group():
    domains = build_domains(9, opteron_6172(), CfsTunables())
    machine = domains[-1]
    assert machine.local_group() == frozenset(range(8, 16))


def test_domains_flat_smp():
    domains = build_domains(0, smp(4), CfsTunables())
    assert len(domains) == 1
    assert domains[0].span == frozenset(range(4))
    assert len(domains[0].groups) == 4
