"""Tests for the adaptive mutex and the distribution helpers."""

import pytest

from repro.analysis.distributions import (log_histogram, percentile_row,
                                          render_histogram)
from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec, usec
from repro.core.metrics import LatencyRecorder
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory
from repro.sync import AdaptiveMutex


def make_engine(ncpus=2):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory("fifo"), seed=31)


# --------------------------------------------------------- adaptive mutex

def test_uncontended_adaptive_acquire_never_sleeps():
    eng = make_engine()
    lock = AdaptiveMutex(eng, spin_ns=usec(20))

    def solo(ctx):
        for _ in range(10):
            yield from lock.acquire_adaptive()
            yield Run(usec(10))
            yield lock.release()
            yield Sleep(msec(1))

    t = eng.spawn(ThreadSpec("solo", solo))
    eng.run(until=sec(1))
    assert lock.acquisitions == 10
    assert lock.slept_acquires == 0
    # no blocked time beyond the explicit Sleeps
    assert t.total_sleeptime == 10 * msec(1)


def test_short_hold_resolved_by_spinning():
    """When the owner releases within the spin window, the waiter
    acquires without sleeping."""
    eng = make_engine(ncpus=2)
    lock = AdaptiveMutex(eng, spin_ns=usec(100), spin_rounds=4)

    def holder(ctx):
        yield from lock.acquire_adaptive()
        yield Run(usec(30))  # shorter than the spin window
        yield lock.release()

    def waiter(ctx):
        yield Run(usec(5))  # arrive just after the holder
        yield from lock.acquire_adaptive()
        yield lock.release()

    eng.spawn(ThreadSpec("holder", holder))
    w = eng.spawn(ThreadSpec("waiter", waiter))
    eng.run(until=sec(1))
    assert lock.slept_acquires == 0
    assert w.total_sleeptime == 0
    assert w.total_runtime > usec(5)  # it did burn spin cycles


def test_long_hold_falls_back_to_sleeping():
    eng = make_engine(ncpus=2)
    lock = AdaptiveMutex(eng, spin_ns=usec(50), spin_rounds=4)

    def holder(ctx):
        yield from lock.acquire_adaptive()
        yield Run(msec(5))  # far beyond the spin window
        yield lock.release()

    def waiter(ctx):
        yield Run(usec(5))
        yield from lock.acquire_adaptive()
        yield lock.release()

    eng.spawn(ThreadSpec("holder", holder))
    w = eng.spawn(ThreadSpec("waiter", waiter))
    eng.run(until=sec(1))
    assert lock.slept_acquires == 1
    assert w.total_sleeptime > 0


def test_spin_counts_as_runtime_for_ule_classification():
    """The same contention classifies differently by lock type: a
    spin-heavy waiter accumulates runtime (toward batch), a sleeping
    waiter accumulates sleep (toward interactive)."""
    eng = Engine(smp(2), scheduler_factory("ule"), seed=31)
    lock = AdaptiveMutex(eng, spin_ns=msec(2), spin_rounds=8)

    def holder(ctx):
        while True:
            yield from lock.acquire_adaptive()
            yield Run(msec(3))
            yield lock.release()
            yield Run(usec(100))

    def spinner(ctx):
        while True:
            yield from lock.acquire_adaptive()
            yield Run(usec(100))
            yield lock.release()
            yield Sleep(usec(500))

    eng.spawn(ThreadSpec("holder", holder, affinity=frozenset({0})))
    s = eng.spawn(ThreadSpec("spinner", spinner,
                             affinity=frozenset({1})))
    eng.run(until=sec(8))
    # the spinner burned most of its cycles spinning: classified batch
    assert s.total_runtime > s.total_sleeptime
    assert not s.policy.interactive


# ---------------------------------------------------------- distributions

def test_log_histogram_buckets_cover_samples():
    samples = [100, 200, 1500, 1_000_000]
    rows = log_histogram(samples)
    assert sum(count for _, _, count in rows) == len(samples)
    # buckets are contiguous powers of two
    for (lo1, hi1, _), (lo2, hi2, _) in zip(rows, rows[1:]):
        assert hi1 == pytest.approx(lo2)


def test_log_histogram_ignores_nonpositive():
    assert log_histogram([0, -5]) == []
    rows = log_histogram([0, 8])
    assert sum(c for _, _, c in rows) == 1


def test_render_histogram_output():
    text = render_histogram([10**6, 2 * 10**6, 3 * 10**6],
                            title="demo")
    assert "demo" in text
    assert "#" in text
    assert "ms" in text
    assert render_histogram([]) .endswith("(no samples)")


def test_percentile_row_units():
    rec = LatencyRecorder("x")
    for v in (10**6, 2 * 10**6, 10 * 10**6):
        rec.record(v)
    row = percentile_row(rec)
    assert row["count"] == 3
    assert row["max"] == pytest.approx(10.0)
    assert row["p50"] == pytest.approx(2.0)
