"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "experiments:" in out
    assert "fig6" in out
    assert "cfs" in out and "ule" in out
    assert "Sysbench" in out


def test_run_command(capsys):
    assert main(["run", "Gzip", "--sched", "ule", "--cpus", "1"]) == 0
    out = capsys.readouterr().out
    assert "Gzip on ule" in out
    assert "performance=" in out


def test_compare_command(capsys):
    assert main(["compare", "Gzip", "--cpus", "2"]) == 0
    out = capsys.readouterr().out
    assert "ULE is" in out


def test_experiment_command(capsys):
    assert main(["experiment", "table1"]) == 0
    out = capsys.readouterr().out
    assert "sched_pickcpu" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "not-a-workload"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_report_subset_to_file(tmp_path, capsys):
    out = tmp_path / "report.txt"
    assert main(["report", "--only", "table1", "-o", str(out)]) == 0
    text = out.read_text()
    assert "Reproduction report" in text
    assert "sched_pickcpu" in text
    assert "completed in" in text


def test_compare_with_noise(capsys):
    assert main(["compare", "Gzip", "--cpus", "2", "--noise"]) == 0
    assert "ULE is" in capsys.readouterr().out
