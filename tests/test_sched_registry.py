"""Registry regressions: re-registration is loud, unknown names list
the zoo, and cleanup helpers work.

``register_scheduler`` used to overwrite silently — a zoo module
colliding with a builtin (or a test leaking a stub) would swap the
implementation behind every ``scheduler_factory`` call in the process
with no trace.  Now it warns, and raises under ``strict=True`` or the
``REPRO_SCHED_STRICT`` environment variable.
"""

import warnings

import pytest

from repro.core.errors import SchedulerError
from repro.sched import available_schedulers, scheduler_factory
from repro.sched.registry import (STRICT_ENV, register_scheduler,
                                  unregister_scheduler)

ZOO = ("eevdf", "bfs", "lottery", "staticprio", "predictive")


@pytest.fixture
def scratch_name():
    """A throwaway registry slot, guaranteed unregistered afterwards."""
    name = "test-scratch-sched"
    unregister_scheduler(name)
    yield name
    unregister_scheduler(name)


def _stub(engine, **kw):  # pragma: no cover - never constructed
    raise AssertionError("stub factory must not be instantiated")


def test_first_registration_is_silent(scratch_name):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        register_scheduler(scratch_name, _stub)
    assert scratch_name in available_schedulers()


def test_reregistration_warns_and_replaces(scratch_name):
    register_scheduler(scratch_name, _stub)
    replacement = lambda engine, **kw: None
    with pytest.warns(RuntimeWarning, match="already registered"):
        register_scheduler(scratch_name, replacement)
    # the factory *was* replaced (warn-and-replace, not warn-and-drop)
    from repro.sched import registry
    assert registry._FACTORIES[scratch_name] is replacement


def test_reregistration_raises_under_strict_flag(scratch_name):
    register_scheduler(scratch_name, _stub)
    with pytest.raises(SchedulerError, match="already registered"):
        register_scheduler(scratch_name, _stub, strict=True)


def test_reregistration_raises_under_strict_env(scratch_name,
                                                monkeypatch):
    register_scheduler(scratch_name, _stub)
    monkeypatch.setenv(STRICT_ENV, "1")
    with pytest.raises(SchedulerError, match="already registered"):
        register_scheduler(scratch_name, _stub)
    # strict=False overrides the environment explicitly
    with pytest.warns(RuntimeWarning):
        register_scheduler(scratch_name, _stub, strict=False)


def test_unregister_then_register_is_silent(scratch_name):
    register_scheduler(scratch_name, _stub)
    unregister_scheduler(scratch_name)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        register_scheduler(scratch_name, _stub)


def test_unregister_unknown_name_is_noop():
    unregister_scheduler("never-registered-name")  # must not raise


def test_unknown_scheduler_error_lists_zoo():
    with pytest.raises(SchedulerError) as exc_info:
        scheduler_factory("no-such-policy")
    message = str(exc_info.value)
    assert "no-such-policy" in message
    for name in ZOO:
        assert name in message, \
            f"error message should list zoo entry {name!r}"


def test_zoo_and_builtins_all_available():
    names = available_schedulers()
    for name in ("fifo", "cfs", "ule", "rt", "linux") + ZOO:
        assert name in names
    assert names == sorted(names)  # stable, sorted listing
