"""Timing-wheel event queue: shared contract + accounting regressions.

The parametrized tests pin the *shared* EventQueue API contract on
both implementations; the wheel-specific ones exercise what the heap
does not have — slot/overflow routing, cascading, and the
lazy-compaction accounting when compaction and cascade interleave
(the satellite regression of PR 5: compaction must subtract what it
actually removed, never reset counters, and must filter container
lists in place because the pop loop holds hoisted aliases).
"""

import pytest

from repro.core.events import EventQueue
from repro.core.timerwheel import (NUM_SLOTS, SLOT_SHIFT,
                                   TimingWheelQueue)

QUEUES = (EventQueue, TimingWheelQueue)

#: one wheel slot in ns, and a time safely beyond the horizon
SLOT_NS = 1 << SLOT_SHIFT
BEYOND_HORIZON = (NUM_SLOTS + 10) * SLOT_NS


def drain(q):
    """Pop everything; returns the fired (time, seq) list and checks
    order + accounting along the way."""
    order = []
    while (e := q.pop()) is not None:
        order.append((e.time, e.seq))
        q._check_accounting()
    assert order == sorted(order)
    return order


# ---------------------------------------------------------------- shared
# contract, both implementations


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_time_order_and_fifo_ties(queue_cls):
    q = queue_cls()
    fired = []
    q.post(3 * SLOT_NS, fired.append, "c")
    q.post(SLOT_NS, fired.append, "a")
    q.post(SLOT_NS, fired.append, "a2")  # tie: FIFO by seq
    q.post(2 * SLOT_NS, fired.append, "b")
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == ["a", "a2", "b", "c"]


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_pop_before_limit_contract(queue_cls):
    q = queue_cls()
    q.post(10, lambda: None)
    q.post(20, lambda: None)
    assert q.pop_before(5) is None          # earliest beyond limit
    assert len(q) == 2                      # ... and stays queued
    assert q.pop_before(10).time == 10      # boundary is inclusive
    assert q.pop_before(None).time == 20    # None = no limit
    assert q.pop_before(None) is None       # drained
    assert q.pop_before(100) is None


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_pop_before_skips_cancelled(queue_cls):
    q = queue_cls()
    dead = q.post(10, lambda: None)
    q.post(20, lambda: None)
    dead.cancel()
    # The dead head must not satisfy a limit that only it meets.
    assert q.pop_before(15) is None
    assert q.pop_before(25).time == 20
    q._check_accounting()


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_repost_and_len(queue_cls):
    q = queue_cls()
    fired = []
    tick = q.make_reusable(fired.append, "t")
    q.repost(tick, SLOT_NS)
    q.post(SLOT_NS, fired.append, "later")
    assert len(q) == 2 and bool(q)
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == ["t", "later"]
    assert len(q) == 0 and not q


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_peek_time_matches_pop(queue_cls):
    q = queue_cls()
    q.post(7, lambda: None)
    q.post(3, lambda: None)
    assert q.peek_time() == 3
    assert q.pop().time == 3
    assert q.peek_time() == 7


# ---------------------------------------------------------------- wheel
# routing and cascade


def test_overflow_events_cascade_in_order():
    q = TimingWheelQueue()
    times = [BEYOND_HORIZON + i * 7 * SLOT_NS for i in range(20)]
    times += [i * SLOT_NS // 2 for i in range(20)]  # near-future mix
    for t in times:
        q.post(t, lambda: None)
    assert len(q) == 40
    order = drain(q)
    assert [t for t, _ in order] == sorted(times)


def test_same_instant_post_during_drain_fires_before_later_slots():
    # A resched IPI posted at `now` from a callback must fire before
    # the next slot's events: it joins the pending heap mid-drain.
    q = TimingWheelQueue()
    fired = []

    def first():
        fired.append("first")
        q.post(SLOT_NS, lambda: fired.append("ipi"))

    q.post(SLOT_NS, first)
    q.post(2 * SLOT_NS, lambda: fired.append("tick"))
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == ["first", "ipi", "tick"]


def test_empty_wheel_jumps_to_overflow():
    q = TimingWheelQueue()
    q.post(BEYOND_HORIZON * 3, lambda: None)
    assert q.peek_time() == BEYOND_HORIZON * 3
    assert q.pop().time == BEYOND_HORIZON * 3
    assert q.pop() is None


# ---------------------------------------------------------------- the
# compaction/cascade accounting regressions


def test_overflow_compaction_then_cascade_accounting():
    """Cancel enough overflow entries to trigger overflow compaction,
    then cascade the survivors: ``len()`` and both dead counters must
    stay exact throughout (subtractive accounting)."""
    q = TimingWheelQueue()
    live = [q.post(BEYOND_HORIZON + i * SLOT_NS, lambda: None)
            for i in range(10)]
    dead = [q.post(BEYOND_HORIZON + (i + 20) * SLOT_NS, lambda: None)
            for i in range(200)]
    for e in dead:
        e.cancel()
        q._check_accounting()
    assert len(q) == 10
    # Compaction ran: the overflow heap cannot still hold all 200.
    assert len(q._overflow) < 120
    assert drain(q) == sorted((e.time, e.seq) for e in live)
    assert len(q) == 0


def test_cancel_after_cascade_counts_in_the_new_region():
    """An overflow entry that cascaded into the wheel and is cancelled
    *afterwards* must be charged to ``_dead_in_wheel``, not
    ``_dead_in_heap`` — double-counting either way breaks ``len()``."""
    q = TimingWheelQueue()
    far = q.post(BEYOND_HORIZON, lambda: None)
    q.post(BEYOND_HORIZON - SLOT_NS, lambda: None)
    # Drain up to the earlier event: the cascade pulls `far` inside
    # the horizon (into a slot bucket).
    assert q.pop().time == BEYOND_HORIZON - SLOT_NS
    assert far._region != 2  # no longer in the overflow region
    far.cancel()
    q._check_accounting()
    assert len(q) == 0
    assert q.pop() is None
    q._check_accounting()


def test_wheel_compaction_during_drain_keeps_hoisted_alias_valid():
    """A callback that mass-cancels mid-drain triggers wheel
    compaction while ``pop``'s hoisted ``pending`` alias is live: the
    filter must happen in place, and later pops must still see every
    surviving entry in order."""
    q = TimingWheelQueue()
    fired = []
    victims = []

    def massacre():
        fired.append("massacre")
        for e in victims:
            e.cancel()

    q.post(SLOT_NS, massacre)
    # Same-slot victims sit in the pending heap during the drain.
    victims.extend(q.post(SLOT_NS, fired.append, i)
                   for i in range(100))
    victims.extend(q.post(3 * SLOT_NS, fired.append, i)
                   for i in range(100, 200))
    survivor = q.post(5 * SLOT_NS, fired.append, "survivor")
    while (e := q.pop()) is not None:
        e.callback(*e.args)
        q._check_accounting()
    assert fired == ["massacre", "survivor"]
    assert survivor.popped
    assert len(q) == 0


def test_heap_compaction_is_subtractive_not_reset():
    """EventQueue regression: two compaction-sized cancel waves with a
    pop between them — resetting ``_dead_in_heap`` to zero in the
    first compaction would let the second wave's dead entries leak."""
    q = EventQueue()
    keep = [q.post(100_000 + i, lambda: None) for i in range(5)]
    wave1 = [q.post(i, lambda: None) for i in range(200)]
    for e in wave1:
        e.cancel()
        q._check_accounting()
    assert len(q) == 5
    wave2 = [q.post(1000 + i, lambda: None) for i in range(200)]
    for e in wave2:
        e.cancel()
        q._check_accounting()
    assert len(q) == 5
    assert drain(q) == sorted((e.time, e.seq) for e in keep)


def test_purge_when_only_dead_entries_remain():
    q = TimingWheelQueue()
    entries = [q.post(i * SLOT_NS, lambda: None) for i in range(32)]
    entries += [q.post(BEYOND_HORIZON + i, lambda: None)
                for i in range(32)]
    for e in entries:
        e.cancel()
    assert len(q) == 0
    assert q.pop() is None          # triggers the purge
    assert q._wheel_count == 0 and not q._overflow and not q._pending
    q._check_accounting()


# ---------------------------------------------------------------- the
# overflow-cascade horizon edges


def test_post_exactly_at_horizon_boundary_routes_to_overflow():
    """``cursor + NUM_SLOTS`` is the first slot *outside* the horizon:
    an event there must go to overflow, one slot earlier must go into
    the wheel — and both must fire in order regardless of routing."""
    q = TimingWheelQueue()
    inside = q.post((NUM_SLOTS - 1) * SLOT_NS, lambda: None)
    edge = q.post(NUM_SLOTS * SLOT_NS, lambda: None)
    just_past = q.post(NUM_SLOTS * SLOT_NS + 1, lambda: None)
    assert inside._region == 1   # wheel
    assert edge._region == 2     # overflow
    assert just_past._region == 2
    q._check_accounting()
    assert drain(q) == sorted((e.time, e.seq)
                              for e in (inside, edge, just_past))


def test_cascade_lands_exactly_on_cursor_slot():
    """An overflow entry whose slot equals the advanced cursor joins
    the pending heap directly (a bucket insert would skip it: the
    cursor's bucket is drained before the cascade check recurs)."""
    q = TimingWheelQueue()
    # One event far out; the wheel is otherwise empty, so _advance
    # jumps the cursor straight onto the overflow entry's slot.
    target = 3 * NUM_SLOTS * SLOT_NS
    first = q.post(target, lambda: None)
    # A second overflow entry in the *same* slot, later in time.
    second = q.post(target + 5, lambda: None)
    assert first._region == second._region == 2
    assert q.pop() is first
    assert first._region == 0
    assert q.pop() is second
    assert q.pop() is None
    q._check_accounting()


def test_cascade_spanning_multiple_horizons():
    """Overflow entries more than a full horizon apart cascade in
    waves: each _advance pulls in only what the new horizon covers,
    and the far tail stays in overflow until the cursor gets there."""
    q = TimingWheelQueue()
    waves = [q.post(i * NUM_SLOTS * SLOT_NS + (i % 7) * SLOT_NS,
                    lambda: None) for i in range(1, 6)]
    near = q.post(SLOT_NS, lambda: None)
    assert q.pop() is near
    # After the first advance the deep tail must still be overflow.
    assert any(e._region == 2 for e in waves[2:])
    assert drain(q) == sorted((e.time, e.seq) for e in waves)
    assert len(q) == 0


def test_mass_cancel_then_cascade_across_horizon():
    """Satellite regression: a mass-cancel that triggers *overflow*
    compaction immediately followed by a cascade that crosses the old
    horizon — the cascade must drop the remaining dead entries it
    meets (they were not compacted away) without double-subtracting
    the ones compaction already removed."""
    q = TimingWheelQueue()
    survivors = [q.post(2 * NUM_SLOTS * SLOT_NS + i * SLOT_NS,
                        lambda: None) for i in range(8)]
    doomed = [q.post(2 * NUM_SLOTS * SLOT_NS + i, lambda: None)
              for i in range(150)]
    # Cancel from the back: the compaction threshold (dead > 64 and
    # dead*2 > len) is crossed mid-wave, leaving a mixed heap of
    # compacted-away and still-present dead entries.
    for e in reversed(doomed):
        e.cancel()
    q._check_accounting()
    assert len(q) == len(survivors)
    # The cascade (wheel is empty, cursor jumps across the horizon)
    # must drop any dead stragglers and fire the survivors in order.
    assert drain(q) == sorted((e.time, e.seq) for e in survivors)
    assert q._dead_in_heap == 0 and q._dead_in_wheel == 0


def test_mass_cancel_in_wheel_then_cascade_refill():
    """Wheel-side twin: cancel enough *slot-bucket* entries to trigger
    wheel compaction while overflow still holds live entries, then
    drain — the cascade refills the compacted wheel and accounting
    stays exact end to end."""
    q = TimingWheelQueue()
    doomed = [q.post((1 + i % (NUM_SLOTS - 2)) * SLOT_NS + i,
                     lambda: None) for i in range(180)]
    far = [q.post(BEYOND_HORIZON + i * SLOT_NS, lambda: None)
           for i in range(10)]
    for e in doomed:
        e.cancel()
        q._check_accounting()
    assert len(q) == len(far)
    assert drain(q) == sorted((e.time, e.seq) for e in far)
    assert len(q) == 0
