"""The shard store's crash-tolerance contract: atomic lease claims,
work stealing after expiry, poison quarantine, jittered retry
backoff, verified results, and corrupt-database recovery."""

import sqlite3

import pytest

from repro.experiments.store import (DEFAULT_MAX_CRASHES, ShardStore,
                                     backoff_jitter, result_sha)


class FakeClock:
    """Injectable monotonic clock so lease expiry needs no sleeping."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(tmp_path, clock):
    with ShardStore(tmp_path / "store", fingerprint="fp",
                    _now=clock) as s:
        yield s


def keyed(n):
    return [(f"k{i}", {"i": i}) for i in range(n)]


# ------------------------------------------------------------ enqueue


def test_add_cells_inserts_and_ignores_existing(store):
    assert store.add_cells(keyed(3)) == 3
    assert store.add_cells(keyed(5)) == 2  # k0-k2 already present
    assert store.counts() == {"pending": 5}


def test_add_cells_preserves_terminal_rows(store):
    store.add_cells(keyed(2))
    key, _ = store.claim("w", 10)
    store.complete(key, {"v": 1})
    # re-enqueueing the same sweep (a resume) keeps the done row
    store.add_cells(keyed(2))
    assert store.counts() == {"done": 1, "pending": 1}
    assert store.get_result(key) == (True, {"v": 1})


def test_prune_except_scopes_store_to_one_sweep(store):
    store.add_cells(keyed(4))
    assert store.prune_except(["k1", "k3"]) == 2
    assert store.counts() == {"pending": 2}
    assert store.prune_except(["k1", "k3"]) == 0


# ------------------------------------------------------------ leasing


def test_claim_leases_each_cell_once(store):
    store.add_cells(keyed(2))
    got = {store.claim("w1", 10)[0], store.claim("w2", 10)[0]}
    assert got == {"k0", "k1"}
    assert store.claim("w3", 10) is None  # everything leased


def test_expired_lease_is_stolen_and_counted(store, clock):
    store.add_cells(keyed(1))
    assert store.claim("w1", lease_s=5) is not None
    assert store.claim("w2", lease_s=5) is None
    clock.t = 6.0  # w1's lease lapsed (worker died)
    assert store.claim("w2", lease_s=5) == ("k0", {"i": 0})
    # the steal is recorded as a crash against the cell
    row = store._conn.execute(
        "SELECT crashes, owner FROM cells WHERE key='k0'").fetchone()
    assert row == (1, "w2")


def test_renew_extends_only_own_live_lease(store, clock):
    store.add_cells(keyed(1))
    store.claim("w1", lease_s=5)
    assert store.renew("w1", "k0", lease_s=5)
    clock.t = 20.0
    store.claim("w2", lease_s=5)  # stolen
    assert not store.renew("w1", "k0", lease_s=5)
    assert store.renew("w2", "k0", lease_s=5)


def test_second_expiry_quarantines_poison_cell(store, clock):
    store.add_cells(keyed(1))
    store.claim("w1", lease_s=5)
    clock.t = 6.0
    store.claim("w2", lease_s=5)
    clock.t = 12.0
    assert store.claim("w3", lease_s=5) is None  # quarantined, not dealt
    assert store.counts() == {"failed": 1}
    reason, attempts, crashes = store.failures()["k0"]
    assert reason.startswith("poison")
    assert crashes == DEFAULT_MAX_CRASHES


def test_reap_quarantines_without_a_claimant(store, clock):
    store.add_cells(keyed(1))
    store.claim("w1", lease_s=5)
    clock.t = 6.0
    store.claim("w2", lease_s=5)  # crash 1
    clock.t = 12.0
    assert store.reap() == 1  # crash 2 -> poison, no worker needed
    assert store.counts() == {"failed": 1}


def test_heartbeat_prevents_stealing(store, clock):
    store.add_cells(keyed(1))
    store.claim("w1", lease_s=5)
    clock.t = 4.0
    store.renew("w1", "k0", lease_s=5)
    clock.t = 8.0  # past the original lease, inside the renewed one
    assert store.claim("w2", lease_s=5) is None


# ------------------------------------------------------------ retries


def test_fail_attempt_backs_off_then_exhausts(store, clock):
    store.add_cells(keyed(1))
    store.claim("w", 10)
    assert store.fail_attempt("k0", "boom", retries=1, backoff_s=1.0)
    # backoff window: not claimable yet (jitter keeps it >= 1s)
    assert store.claim("w", 10) is None
    clock.t = 2.5  # jitter is < 2x, so 2.5s is past any window
    assert store.claim("w", 10) == ("k0", {"i": 0})
    assert not store.fail_attempt("k0", "boom2", retries=1,
                                  backoff_s=1.0)
    reason, attempts, _ = store.failures()["k0"]
    assert reason == "error: boom2"
    assert attempts == 2


def test_backoff_jitter_is_deterministic_and_bounded():
    draws = {backoff_jitter(f"key{i}", 1) for i in range(50)}
    assert all(1.0 <= j < 2.0 for j in draws)
    assert len(draws) > 10  # actually spreads retries out
    assert backoff_jitter("key0", 1) == backoff_jitter("key0", 1)
    assert backoff_jitter("key0", 1) != backoff_jitter("key0", 2)


# ------------------------------------------------------------ integrity


def test_results_and_get_result_verify_digests(store):
    store.add_cells(keyed(2))
    for _ in range(2):
        key, _ = store.claim("w", 10)
        store.complete(key, {"v": key})
    assert store.results() == {"k0": {"v": "k0"}, "k1": {"v": "k1"}}

    # flip a bit in one stored result; its sha no longer matches
    store._conn.execute(
        "UPDATE cells SET result = '{\"v\": \"EVIL\"}' "
        "WHERE key = 'k0'")
    with pytest.warns(RuntimeWarning, match="corrupt result"):
        found, value = store.get_result("k0")
    assert (found, value) == (False, None)
    # discarded back to pending: recomputed, never served
    assert store.counts() == {"done": 1, "pending": 1}
    assert not store.all_terminal()


def test_results_discards_unparsable_rows(store):
    store.add_cells(keyed(1))
    key, _ = store.claim("w", 10)
    store.complete(key, [1, 2, 3])
    store._conn.execute(
        "UPDATE cells SET result = '[1, 2' WHERE key = 'k0'")
    with pytest.warns(RuntimeWarning, match="corrupt result"):
        assert store.results() == {}
    assert store.counts() == {"pending": 1}


def test_result_sha_is_canonical():
    assert result_sha({"a": 1, "b": 2}) == result_sha({"b": 2, "a": 1})
    assert result_sha({"a": 1}) != result_sha({"a": 2})


# ------------------------------------------------------------ corruption


def test_truncated_database_is_moved_aside_and_rebuilt(tmp_path):
    target = tmp_path / "store"
    with ShardStore(target, fingerprint="fp") as s:
        s.add_cells(keyed(3))
    # truncate the db mid-file: sqlite can no longer open it
    db = target / "cells.sqlite3"
    db.write_bytes(db.read_bytes()[:100])
    with pytest.warns(RuntimeWarning, match="corrupt"):
        s2 = ShardStore(target, fingerprint="fp")
    try:
        # rebuilt empty; the executor re-enqueues and recomputes
        assert s2.counts() == {}
        assert s2.add_cells(keyed(3)) == 3
        assert (target / "cells.sqlite3.corrupt").exists()
    finally:
        s2.close()


def test_garbage_database_is_recovered(tmp_path):
    target = tmp_path / "store"
    target.mkdir()
    (target / "cells.sqlite3").write_bytes(b"not a database at all")
    with pytest.warns(RuntimeWarning, match="corrupt"):
        s = ShardStore(target, fingerprint="fp")
    try:
        s.add_cells(keyed(1))
        assert s.claim("w", 10) == ("k0", {"i": 0})
    finally:
        s.close()


def test_clear_removes_database(tmp_path):
    target = tmp_path / "store"
    s = ShardStore(target, fingerprint="fp")
    s.add_cells(keyed(1))
    s.clear()
    assert not (target / "cells.sqlite3").exists()
    # a fresh store starts empty
    with ShardStore(target, fingerprint="fp") as s2:
        assert s2.counts() == {}


def test_concurrent_connections_share_one_queue(tmp_path, clock):
    a = ShardStore(tmp_path / "s", fingerprint="fp", _now=clock)
    b = ShardStore(tmp_path / "s", fingerprint="fp", _now=clock)
    try:
        a.add_cells(keyed(2))
        ka, _ = a.claim("wa", 10)
        kb, _ = b.claim("wb", 10)
        assert {ka, kb} == {"k0", "k1"}
        assert b.claim("wb", 10) is None
        a.complete(ka, {"by": "a"})
        assert b.get_result(ka) == (True, {"by": "a"})
    finally:
        a.close()
        b.close()
