"""Smoke tests: every example script runs end to end.

The two long demos (starvation, balancer race) are exercised with the
same entry points the scripts use; the fast ones run as subprocesses
exactly as a user would.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    # pin the env: a REPRO_SANITIZE=1 suite run would otherwise slow
    # the long demos past their timeout (invariant coverage for the
    # schedulers lives in tests/test_sanitizer.py)
    env = {k: v for k, v in os.environ.items() if k != "REPRO_SANITIZE"}
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, env=env)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "CFS (one core, 10 s)" in out
    assert "ULE (one core, 10 s)" in out
    assert "hog" in out and "ia" in out


def test_custom_scheduler():
    out = run_example("custom_scheduler.py")
    for sched in ("cfs", "ule", "lottery"):
        assert sched in out


def test_trace_visualization(tmp_path):
    target = tmp_path / "trace.json"
    out = run_example("trace_visualization.py", str(target))
    assert "trace written" in out
    assert target.exists()
    import json
    doc = json.loads(target.read_text())
    assert doc["traceEvents"]


def test_starvation_demo():
    out = run_example("starvation_demo.py")
    assert "interactivity penalty" in out
    assert "tx/s" in out


@pytest.mark.slow
def test_load_balancer_race():
    out = run_example("load_balancer_race.py", timeout=300)
    assert "CFS" in out and "ULE" in out
    assert "balancer invocations" in out


@pytest.mark.slow
def test_multi_app_consolidation():
    out = run_example("multi_app_consolidation.py")
    assert "webapp" in out
    assert "MG" in out
