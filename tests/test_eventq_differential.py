"""Heap-vs-wheel differential fuzzing (hypothesis-free, seeded).

Two layers, both pure functions of their integer seed:

* **Queue level** — a seeded op fuzzer drives an
  :class:`~repro.core.events.EventQueue` and a
  :class:`~repro.core.timerwheel.TimingWheelQueue` through the
  *identical* sequence of post / cancel / pop / pop_before / repost
  operations (times chosen to straddle slot boundaries and the wheel
  horizon, cancels dense enough to trigger compaction) and asserts
  identical observable behaviour at every step, with the accounting
  invariants checked throughout.
* **Engine level** — :mod:`repro.testing.fuzzer` scenarios run to
  completion under both queue implementations and must produce the
  same canonical schedule digest, the same stop reason, and the same
  final simulated time, under both schedulers.

Seq numbers are assigned identically (both queues count posts), so
"identical op sequence" really does mean "identical (time, seq) pop
order" — any divergence is a queue bug, not a tie-break artifact.
"""

import random

import pytest

from repro.core.events import EventQueue
from repro.core.timerwheel import NUM_SLOTS, SLOT_SHIFT, \
    TimingWheelQueue
from repro.testing.fuzzer import generate_scenario, run_scenario
from repro.tracing.digest import schedule_digest

SLOT_NS = 1 << SLOT_SHIFT

#: time deltas that exercise every routing path: same instant, within
#: a slot, a few slots out, just inside / just beyond the horizon,
#: and far future (deep overflow)
DELTA_CHOICES = (0, 1, SLOT_NS // 2, SLOT_NS, 3 * SLOT_NS,
                 (NUM_SLOTS - 1) * SLOT_NS, NUM_SLOTS * SLOT_NS,
                 (NUM_SLOTS + 1) * SLOT_NS, 4 * NUM_SLOTS * SLOT_NS)

QUEUE_FUZZ_SEEDS = range(12)
QUEUE_FUZZ_OPS = 400

ENGINE_FUZZ_SEEDS = (0, 1, 2, 3)


def _fuzz_queues(seed: int) -> None:
    rng = random.Random(f"eventq-differential:{seed}")
    heap, wheel = EventQueue(), TimingWheelQueue()
    #: live handles, index-aligned between the two queues
    handles: list[tuple] = []
    reusable = (heap.make_reusable(lambda: None, label="tick"),
                wheel.make_reusable(lambda: None, label="tick"))
    reusable_queued = False
    now = 0

    def both_pop(limit=None, before=False):
        nonlocal reusable_queued
        if before:
            eh, ew = heap.pop_before(limit), wheel.pop_before(limit)
        else:
            eh, ew = heap.pop(), wheel.pop()
        assert (eh is None) == (ew is None), (seed, limit)
        if eh is not None:
            assert (eh.time, eh.seq) == (ew.time, ew.seq), (seed, limit)
            if eh is reusable[0]:
                reusable_queued = False
        return eh

    for _ in range(QUEUE_FUZZ_OPS):
        op = rng.random()
        if op < 0.45:
            t = now + rng.choice(DELTA_CHOICES) + rng.randint(0, 99)
            handles.append((heap.post(t, lambda: None),
                            wheel.post(t, lambda: None)))
        elif op < 0.60 and handles:
            eh, ew = handles.pop(rng.randrange(len(handles)))
            assert eh.cancel() == ew.cancel(), seed
        elif op < 0.70 and not reusable_queued:
            t = now + rng.choice(DELTA_CHOICES)
            heap.repost(reusable[0], t)
            wheel.repost(reusable[1], t)
            reusable_queued = True
        elif op < 0.85:
            event = both_pop(now + rng.choice(DELTA_CHOICES),
                             before=True)
            if event is not None:
                now = max(now, event.time)
        else:
            event = both_pop()
            if event is not None:
                now = max(now, event.time)
        assert len(heap) == len(wheel), seed
        assert heap.peek_time() == wheel.peek_time(), seed
        heap._check_accounting()
        wheel._check_accounting()

    # Drain both to exhaustion: identical tail, then both empty.
    while both_pop() is not None:
        pass
    assert len(heap) == len(wheel) == 0


@pytest.mark.parametrize("seed", QUEUE_FUZZ_SEEDS)
def test_queue_ops_pop_identically(seed):
    _fuzz_queues(seed)


@pytest.mark.parametrize("seed", ENGINE_FUZZ_SEEDS)
@pytest.mark.parametrize("sched", ("cfs", "ule"))
def test_engine_digests_identical_under_both_queues(seed, sched):
    scenario = generate_scenario(seed, smoke=True)
    outcomes = {}
    for kind in ("heap", "wheel"):
        engine, _, reason = run_scenario(scenario, sched,
                                         event_queue=kind)
        outcomes[kind] = (schedule_digest(engine), reason, engine.now)
    assert outcomes["heap"] == outcomes["wheel"], scenario.describe()
