"""Shared test helpers: the scheduler list, engine builders, and the
bug-injection utilities.

Single sources of truth that used to be copied across test modules:

* ``SCHEDULERS`` — every shipped general-purpose scheduler (``rt``
  needs rt_priority-tagged threads, so generic workloads cannot drive
  it); re-exported from :data:`repro.testing.oracles.DEFAULT_SCHEDULERS`
  so the test suite and the fuzz oracles always agree;
* ``behavior_from_plan`` — plan-step lists to behaviour generators,
  promoted into :mod:`repro.testing.fuzzer` and re-exported here;
* ``build_engine`` / ``churn`` / ``inject`` — the sanitizer suite's
  fixtures, shared with the mutation self-checks in
  ``test_differential.py``.
"""

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import usec
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory
from repro.testing.fuzzer import behavior_from_plan  # noqa: F401
from repro.testing.oracles import DEFAULT_SCHEDULERS, ZOO_SCHEDULERS

#: every shipped general-purpose scheduler; "linux" is the rt+fair
#: class stack and must satisfy the same invariants as plain cfs
SCHEDULERS = list(DEFAULT_SCHEDULERS)

#: the policy-DSL zoo (docs/scheduler-zoo.md) — same invariants as the
#: mainline schedulers, exercised with bounded seed budgets in tier-1
ZOO = list(ZOO_SCHEDULERS)


def build_engine(sched="fifo", ncpus=1, *, seed=0, sanitize=None,
                 **kw) -> Engine:
    """An engine on a flat SMP topology (single core for ncpus=1)."""
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory(sched), seed=seed,
                  sanitize=sanitize, **kw)


def churn(engine, count=4):
    """Spawn wake/sleep churners so runqueues stay populated."""
    def behavior(ctx):
        while True:
            yield Run(usec(200))
            yield Sleep(usec(100))
    threads = []
    for i in range(count):
        spec = ThreadSpec(f"churn{i}", behavior)
        threads.append(engine.spawn(spec, at=usec(10 * i)))
    return threads


def inject(engine, at, mutate):
    """Post a corruption callback as a normal simulation event."""
    engine.events.post(at, mutate)
