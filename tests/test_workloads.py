"""Tests for the workload models, run under the FIFO reference
scheduler (scheduler-specific behaviour is tested in the experiment
tests)."""

import pytest

from repro.core import Engine
from repro.core.clock import msec, sec, to_sec
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory
from repro.workloads import (ApacheWorkload, CrayWorkload, FiboWorkload,
                             HackbenchWorkload, KernelNoiseWorkload,
                             RocksDbWorkload, SpinnerWorkload,
                             SysbenchWorkload, make_workload,
                             workload_names)
from repro.workloads.base import (BarrierWorkload, ComputeWorkload,
                                  ServerWorkload)
from repro.workloads.parsec import PipelineWorkload
from repro.workloads.phoronix import BuildWorkload, ScimarkWorkload


def make_engine(ncpus=4, sched="fifo", **kw):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory(sched), seed=7, **kw)


def run_to_done(eng, wl, timeout=sec(300)):
    reason = eng.run(until=timeout,
                     stop_when=lambda e: wl.done(e), check_interval=16)
    assert wl.done(eng) or reason == "all-exited", \
        f"{wl.name} did not finish ({reason})"


# ------------------------------------------------------------ archetypes

def test_compute_workload_completes():
    eng = make_engine(ncpus=2)
    wl = ComputeWorkload(app="cw", nthreads=4, work_ns=msec(20),
                         chunk_ns=msec(5))
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.completion_time(eng) == pytest.approx(msec(40), rel=0.2)
    assert wl.performance(eng) > 0


def test_compute_workload_ncores_default():
    eng = make_engine(ncpus=4)
    wl = ComputeWorkload(app="cw", nthreads=None, work_ns=msec(10))
    wl.launch(eng)
    run_to_done(eng, wl)
    assert len(wl.threads(eng)) == 4


def test_barrier_workload_iterations():
    eng = make_engine(ncpus=4)
    wl = BarrierWorkload(app="bw", nthreads=4, iterations=5,
                         phase_ns=msec(10))
    wl.launch(eng)
    run_to_done(eng, wl)
    # 5 iterations of 10ms, one thread per core: ~50ms
    assert wl.completion_time(eng) == pytest.approx(msec(50), rel=0.25)


def test_barrier_workload_with_io():
    eng = make_engine(ncpus=2)
    wl = BarrierWorkload(app="bw", nthreads=2, iterations=3,
                         phase_ns=msec(5), io_ns=msec(10))
    wl.launch(eng)
    run_to_done(eng, wl)
    threads = wl.threads(eng)
    assert all(t.total_sleeptime >= 3 * msec(10) for t in threads)


def test_server_workload_completes_requests():
    eng = make_engine(ncpus=2)
    wl = ServerWorkload(app="srv", nworkers=4, service_ns=msec(1),
                        nclients=2, think_ns=msec(1),
                        total_requests=100)
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.completed >= 100
    assert wl.throughput(eng) > 0
    assert wl.mean_latency_ns(eng) > 0


# ----------------------------------------------------------- applications

def test_fibo_is_pure_compute():
    eng = make_engine(ncpus=1)
    wl = FiboWorkload(work_ns=msec(100))
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.thread.total_sleeptime == 0
    assert wl.thread.total_runtime == msec(100)


def test_sysbench_fork_pattern_and_budget():
    eng = make_engine(ncpus=4)
    wl = SysbenchWorkload(nthreads=8, transactions_per_thread=10,
                          init_per_thread_ns=msec(1))
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.completed >= wl.total_transactions
    assert len(wl.workers) == 8
    assert all(w.parent is wl.master for w in wl.workers)
    assert wl.mean_latency_ns(eng) > 0


def test_apache_closed_loop():
    eng = make_engine(ncpus=2)
    wl = ApacheWorkload(nworkers=10, outstanding=10, total_requests=200)
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.completed >= 200
    assert wl.performance(eng) > 0


def test_cray_cascade_wakes_everyone():
    eng = make_engine(ncpus=4)
    wl = CrayWorkload(nthreads=16, fork_spacing_ns=msec(1),
                      compute_ns=msec(10), chunk_ns=msec(5))
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.all_runnable_at() is not None
    assert len(wl.wake_times()) == 17  # workers + master


def test_hackbench_message_conservation():
    eng = make_engine(ncpus=4)
    wl = HackbenchWorkload(groups=2, fan=3, loops=5)
    wl.launch(eng)
    run_to_done(eng, wl)
    # every written message was read
    for pipes in wl._pipes:
        for pipe in pipes:
            assert pipe.messages_written == pipe.messages_read == 15


def test_rocksdb_readers_and_writers():
    eng = make_engine(ncpus=2)
    wl = RocksDbWorkload(nreaders=4, nwriters=1, total_reads=200)
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.completed_reads >= 200
    assert wl.performance(eng) > 0


def test_spinner_unpin_event():
    eng = make_engine(ncpus=4)
    wl = SpinnerWorkload(count=8, pin_cpu=0, unpin_at=msec(10))
    wl.launch(eng)
    eng.run(until=msec(5))
    assert all(t.affinity == frozenset({0}) for t in wl._threads)
    eng.run(until=msec(20))
    assert all(t.affinity is None for t in wl._threads)


def test_pipeline_processes_all_items():
    eng = make_engine(ncpus=4)
    wl = PipelineWorkload(app="pl", nstages=3, stage_threads=2,
                          items=50, stage_work_ns=msec(1))
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.completed == 50


def test_build_workload_parallelism_cap():
    eng = make_engine(ncpus=4)
    wl = BuildWorkload(app="bld", jobs=12, job_ns=msec(10),
                       parallelism=2)
    wl.launch(eng)
    run_to_done(eng, wl)
    # 12 jobs of ~10ms at parallelism 2: at least ~60ms
    assert wl.completion_time(eng) >= msec(45)


def test_scimark_compute_finishes_with_jvm_noise():
    eng = make_engine(ncpus=1)
    wl = ScimarkWorkload(variant=1, compute_ns=msec(200))
    wl.launch(eng)
    run_to_done(eng, wl)
    assert wl.performance(eng) > 0


def test_kernel_noise_runs_forever():
    eng = make_engine(ncpus=2)
    wl = KernelNoiseWorkload()
    wl.launch(eng)
    eng.run(until=msec(100))
    assert not wl.done(eng)
    threads = wl.threads(eng)
    assert len(threads) == 2
    assert all(t.total_runtime > 0 for t in threads)


# -------------------------------------------------------------- registry

def test_registry_contains_figure5_apps():
    names = workload_names()
    for expected in ["MG", "EP", "Apache", "Sysbench", "ferret",
                     "scimark2-(1)", "Hackb-800"]:
        assert expected in names


def test_registry_unknown_name_raises():
    from repro.core.errors import WorkloadError
    with pytest.raises(WorkloadError):
        make_workload("doom")


@pytest.mark.parametrize("name", ["Gzip", "IS", "swaptions", "x264"])
def test_registry_workloads_run_under_fifo(name):
    eng = make_engine(ncpus=4)
    wl = make_workload(name)
    wl.launch(eng)
    run_to_done(eng, wl, timeout=sec(600))
