"""Decision-trace export and the predictive scheduler trained on it.

The trace layer (:mod:`repro.tracing.decisions`) is the zoo's
"schedules as data" hook: records must be tid-free (spawn-index
identity, like the schedule digest), byte-stable across identical
runs, and round-trip through JSONL.  The :class:`PickTable` trained on
them must behave deterministically as a scheduler and report its
fidelity reproducibly through the ``predict`` experiment.
"""

import io

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec
from repro.core.topology import single_core
from repro.sched import scheduler_factory
from repro.sched.predictive import PickTable
from repro.tracing.decisions import (DecisionRecord, attach_decision_trace,
                                     decision_features, read_jsonl)
from repro.tracing.digest import schedule_digest


def _contended_engine(sched="cfs", seed=0):
    """Three mixed-nice threads on one core: guaranteed contested
    picks."""
    engine = Engine(single_core(), scheduler_factory(sched), seed=seed)
    def behavior(ctx):
        for _ in range(4):
            yield Run(msec(3))
            yield Sleep(msec(1))
    for i, nice in enumerate((-5, 0, 5)):
        engine.spawn(ThreadSpec(f"t{i}", behavior, nice=nice),
                     at=msec(i))
    return engine


def _run_traced(sched="cfs", seed=0):
    engine = _contended_engine(sched, seed)
    trace = attach_decision_trace(engine)
    assert engine.run(until=msec(400)) == "all-exited"
    return engine, trace


# ----------------------------------------------------------------------
# the trace itself
# ----------------------------------------------------------------------

def test_trace_captures_contested_decisions():
    _, trace = _run_traced()
    contested = [r for r in trace.records if r.contested()]
    assert contested, "contention scenario produced no contested picks"
    for r in contested:
        assert len(r.features) == len(r.candidates)
        assert all(len(f) == 7 for f in r.features)  # 4 abs + 3 rel
        assert r.chosen in r.candidates


def test_trace_is_transparent():
    """Attaching the recorder must not change the schedule."""
    bare = _contended_engine()
    assert bare.run(until=msec(400)) == "all-exited"
    traced_engine, _ = _run_traced()
    assert schedule_digest(bare) == schedule_digest(traced_engine)


def test_trace_is_tid_free_and_deterministic():
    """Two identical runs (fresh process-global tids) export
    byte-identical JSONL."""
    def export():
        _, trace = _run_traced()
        buf = io.StringIO()
        count = trace.write_jsonl(buf)
        assert count == len(trace.records)
        return buf.getvalue()
    assert export() == export()


def test_jsonl_round_trip():
    _, trace = _run_traced()
    buf = io.StringIO()
    trace.write_jsonl(buf)
    buf.seek(0)
    parsed = read_jsonl(buf)
    assert len(parsed) == len(trace.records)
    for original, loaded in zip(trace.records, parsed):
        assert isinstance(loaded, DecisionRecord)
        assert loaded.to_json() == original.to_json()


def test_detach_restores_inner_pick():
    engine = _contended_engine()
    inner = engine.scheduler.pick_next
    trace = attach_decision_trace(engine)
    assert engine.scheduler.pick_next != inner
    trace.detach()
    assert engine.scheduler.pick_next == inner


def test_relative_flags_rank_within_candidate_set():
    """The three trailing flags mark the longest-wait / lowest-nice /
    least-ran candidates of each decision; singletons get (1, 1, 1)."""
    _, trace = _run_traced()
    for r in trace.records:
        if not r.features:  # idle pick: nothing on the queue
            continue
        if len(r.features) == 1:
            assert r.features[0][4:] == (1, 1, 1)
            continue
        for col in (4, 5, 6):
            assert any(f[col] == 1 for f in r.features)


# ----------------------------------------------------------------------
# the table trained on it
# ----------------------------------------------------------------------

def _trained_table():
    _, trace = _run_traced()
    return PickTable().train(trace.records)


def test_table_trains_on_contested_only():
    _, trace = _run_traced()
    table = PickTable().train(trace.records)
    contested = [r for r in trace.records if r.contested()]
    assert len(table) > 0
    offers = sum(seen for _, seen in table.counts.values())
    assert offers == sum(len(r.candidates) for r in contested)


def test_table_scores_and_predicts():
    table = _trained_table()
    # unseen features sit at the neutral prior
    assert table.score(("nothing", "like", "this")) == 0.5
    for features, (picked, seen) in table.counts.items():
        assert 0 < table.score(features) < 1
        assert 0 <= picked <= seen
    # predict is an argmax with earliest-row tie-break
    rows = list(table.counts)
    assert 0 <= table.predict(rows[:2]) < 2
    assert table.predict([rows[0], rows[0]]) == 0


def test_trained_scheduler_is_deterministic_and_complete():
    table = _trained_table()
    def run_once():
        engine = Engine(single_core(),
                        scheduler_factory("predictive", table=table),
                        seed=3)
        def behavior(ctx):
            for _ in range(3):
                yield Run(msec(2))
                yield Sleep(msec(1))
        for i in range(3):
            engine.spawn(ThreadSpec(f"d{i}", behavior, nice=5 * i - 5))
        assert engine.run(until=msec(400)) == "all-exited"
        return schedule_digest(engine)
    assert run_once() == run_once()


# ----------------------------------------------------------------------
# the experiment and the CLI export
# ----------------------------------------------------------------------

def test_predict_experiment_quick():
    from repro.experiments.predict_fidelity import run
    result = run(quick=True, seed=1)
    fid = result.data["fidelity"]
    assert set(fid) == {"pick-table", "incumbent", "longest-wait"}
    # the learned table must clearly beat naive incumbent-stickiness
    assert fid["pick-table"] > fid["incumbent"] + 0.3
    assert 0.0 <= fid["pick-table"] <= 1.0
    assert "fidelity" in result.text
    deployed = [r for r in result.rows
                if r.get("predictor") == "deployed-scheduler"]
    assert deployed and deployed[0]["end"] == "all-exited"


def test_predict_experiment_reproducible():
    from repro.experiments.predict_fidelity import run
    assert run(quick=True, seed=2).rows == run(quick=True, seed=2).rows


def test_cli_run_decisions_export(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "decisions.jsonl"
    assert main(["run", "Gzip", "--sched", "cfs", "--cpus", "1",
                 "--decisions", str(out)]) == 0
    assert "decision" in capsys.readouterr().out
    with out.open() as fh:
        records = read_jsonl(fh)
    assert records, "CLI exported no decision records"
    assert all(len(f) == 7 for r in records for f in r.features)
