"""Red-black tree unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfs.rbtree import RBTree


def test_insert_and_min():
    tree = RBTree()
    for key in [5, 3, 8, 1, 9]:
        tree.insert(key, f"v{key}")
    assert tree.min_key() == 1
    assert tree.min_value() == "v1"
    assert len(tree) == 5


def test_remove_returns_value():
    tree = RBTree()
    tree.insert(1, "a")
    tree.insert(2, "b")
    assert tree.remove(1) == "a"
    assert tree.min_key() == 2
    assert len(tree) == 1


def test_remove_missing_raises():
    tree = RBTree()
    with pytest.raises(KeyError):
        tree.remove(42)


def test_duplicate_insert_raises():
    tree = RBTree()
    tree.insert(1, "a")
    with pytest.raises(KeyError):
        tree.insert(1, "b")


def test_second_value():
    tree = RBTree()
    assert tree.second_value() is None
    tree.insert(10, "x")
    assert tree.second_value() is None
    tree.insert(5, "y")
    assert tree.min_value() == "y"
    assert tree.second_value() == "x"


def test_items_inorder():
    tree = RBTree()
    keys = [7, 2, 9, 4, 1, 8, 3]
    for k in keys:
        tree.insert(k, k)
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_contains():
    tree = RBTree()
    tree.insert((5, 1), "a")
    assert (5, 1) in tree
    assert (5, 2) not in tree


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 1000), unique=True, min_size=1))
def test_property_insert_preserves_invariants(keys):
    tree = RBTree()
    for k in keys:
        tree.insert(k, k)
    tree.check_invariants()
    assert tree.min_key() == min(keys)
    assert list(tree.values()) == sorted(keys)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 300), unique=True, min_size=2),
       st.data())
def test_property_interleaved_insert_delete(keys, data):
    tree = RBTree()
    present = set()
    for k in keys:
        tree.insert(k, k)
        present.add(k)
        if len(present) > 1 and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(sorted(present)))
            tree.remove(victim)
            present.discard(victim)
        tree.check_invariants()
    if present:
        assert tree.min_key() == min(present)
    assert set(tree.values()) == present


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 100), unique=True, min_size=1))
def test_property_drain_by_min(keys):
    """Repeatedly removing the minimum yields keys in sorted order —
    the exact access pattern of pick_next_task."""
    tree = RBTree()
    for k in keys:
        tree.insert(k, k)
    drained = []
    while tree:
        k = tree.min_key()
        drained.append(k)
        tree.remove(k)
        tree.check_invariants()
    assert drained == sorted(keys)
