"""Unit tests for ULE's sched_pickcpu decision ladder."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.schedflags import SelectFlags
from repro.core.topology import smp
from repro.sched import scheduler_factory


def spin(ctx):
    yield run_forever()


def make_engine(ncpus=4, **kw):
    return Engine(smp(ncpus), scheduler_factory("ule", **kw), seed=91)


def test_affine_placement_returns_home_when_prompt():
    """A recently-run thread whose home core would run it promptly is
    placed back there (step 1 of §2.2's ladder)."""
    eng = make_engine()

    def napper(ctx):
        while True:
            yield Run(msec(1))
            yield Sleep(msec(2))

    t = eng.spawn(ThreadSpec("nap", napper))
    eng.run(until=msec(200))
    home = t.cpu
    cpu = eng.scheduler.select_task_rq(t, SelectFlags.WAKEUP)
    assert cpu == home


def test_affinity_window_expires():
    """A thread that has not run for longer than the affinity window
    is placed by the load search instead."""
    eng = make_engine()

    def one_shot(ctx):
        yield Run(msec(1))
        yield Sleep(sec(5))  # sleeps past the 500 ms affinity window
        yield Run(msec(1))

    t = eng.spawn(ThreadSpec("cold", one_shot))
    # load up the thread's home core so the fallback search avoids it
    eng.run(until=msec(50))
    home = t.cpu
    hogs = [eng.spawn(ThreadSpec(f"h{i}", spin,
                                 affinity=frozenset({home})))
            for i in range(3)]
    eng.run(until=sec(6))
    # woken cold: placed away from its crowded old home
    assert t.cpu != home


def test_lowpri_search_prefers_core_where_thread_runs_first():
    """Placement passes over a core whose running thread has *better*
    priority than the newcomer, choosing one where the newcomer would
    run first — even at equal load (§2.2's min-priority search)."""
    eng = make_engine(ncpus=2)
    # cpu0: a batch hog (bad priority ~56)
    hog = eng.spawn(ThreadSpec("hog", spin, affinity=frozenset({0}),
                               tags={"ule_history": (sec(4), 0)}))
    # cpu1: a *running* strongly-interactive spinner (priority ~10)
    svc = eng.spawn(ThreadSpec("svc", spin, affinity=frozenset({1}),
                               tags={"ule_history": (0, sec(4900) // 1000)}))
    eng.run(until=sec(1))
    assert svc.policy.interactive  # still inside its sleep credit
    # a mildly-interactive newcomer (priority ~ 24, worse than svc's
    # but better than the hog's): only cpu0 passes the lowpri test
    probe = eng.spawn(ThreadSpec(
        "probe", spin,
        tags={"ule_history": (sec(1), sec(1) + sec(1) // 10)}))
    eng.run(until=sec(1) + msec(1))
    hog_pri = hog.policy.priority
    svc_pri = svc.policy.priority
    probe_pri = probe.policy.priority
    assert svc_pri < probe_pri < hog_pri
    assert probe.rq_cpu == 0


def test_pickcpu_scan_cost_scales_with_cores():
    from repro.experiments.base import make_engine as mk
    costs = {}
    for ncpus in (4, 16):
        eng = mk("ule", ncpus=ncpus, seed=1,
                 pickcpu_scan_cost_ns=usec(1))

        def sleeper(ctx):
            for _ in range(200):
                yield Run(msec(1))
                yield Sleep(msec(3))

        for i in range(ncpus):
            eng.spawn(ThreadSpec(f"s{i}", sleeper))
        eng.run(until=sec(2))
        wakeups = max(1.0, eng.metrics.counter("ule.pickcpu_scans"))
        costs[ncpus] = eng.metrics.counter("sched.overhead_ns")
    # more cores -> more scanning work overall
    assert costs[16] > costs[4]


def test_fork_balances_by_thread_count_not_load():
    """ULE forks onto the core with the fewest threads even when PELT
    would say otherwise ('ULE simply picks the core with the lowest
    number of running threads')."""
    eng = make_engine(ncpus=2)
    # cpu0 runs one long-established hog; cpu1 runs two fresh ones
    eng.spawn(ThreadSpec("old", spin, affinity=frozenset({0})))
    eng.run(until=sec(1))
    for i in range(2):
        eng.spawn(ThreadSpec(f"new{i}", spin, affinity=frozenset({1})))
    eng.run(until=sec(1) + msec(10))
    t = eng.spawn(ThreadSpec("fork", spin))
    eng.run(until=sec(1) + msec(50))
    assert t.rq_cpu == 0  # fewer threads, despite the older hog
