"""Runtime invariant sanitizer: bug injection, gating, smoke runs.

The injection tests corrupt live scheduler state from a mid-run event
and assert the sanitizer catches each corruption *with accurate
context* (invariant name, simulated time, core, recent trace).  The
smoke tests run one fig5 cell per shipped scheduler under
``--sanitize`` to prove they are invariant-clean end to end.
"""

import pytest

from repro.core import Engine
from repro.core.clock import msec, sec, usec
from repro.core.engine import _sanitize_from_env
from repro.core.errors import SanitizerError, SimulationError
from repro.core.topology import smp
from repro.experiments.base import make_engine as make_exp_engine
from repro.experiments.fig5_single_core_perf import run_app
from repro.sched import scheduler_factory
from tests.conftest import SCHEDULERS as SMOKE_SCHEDULERS
from tests.conftest import build_engine, churn, inject


def make_engine(sched="fifo", ncpus=2, **kw):
    """Sanitized engine, two cores by default (shared helpers live in
    tests/conftest.py)."""
    return build_engine(sched, ncpus, sanitize=True, **kw)


# ----------------------------------------------------------------------
# gating: off by default, REPRO_SANITIZE env, explicit flag
# ----------------------------------------------------------------------

def test_sanitizer_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    engine = Engine(smp(2), scheduler_factory("fifo"))
    assert engine.sanitizer is None


def test_sanitizer_env_enables(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    engine = Engine(smp(2), scheduler_factory("fifo"))
    assert engine.sanitizer is not None


def test_sanitizer_param_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    engine = Engine(smp(2), scheduler_factory("fifo"), sanitize=False)
    assert engine.sanitizer is None


@pytest.mark.parametrize("value,expected", [
    ("", False), ("0", False), ("false", False), ("no", False),
    ("off", False), ("1", True), ("true", True), ("yes", True),
])
def test_env_truthiness(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_SANITIZE", value)
    assert _sanitize_from_env() is expected


def test_sanitizer_runs_checks():
    engine = make_engine()
    churn(engine)
    engine.run(until=msec(5))
    assert engine.sanitizer.checks_run > 0
    assert engine.sanitizer.checks_run <= engine.events_processed


def test_sanitizer_does_not_change_schedule():
    def run_once(sanitize):
        engine = Engine(smp(2), scheduler_factory("cfs"), seed=7,
                        sanitize=sanitize)
        churn(engine)
        engine.run(until=msec(20))
        return [(t.name, t.total_runtime, t.nr_switches)
                for t in engine.threads]
    assert run_once(True) == run_once(False)


# ----------------------------------------------------------------------
# bug injection: runqueue counter corruption
# ----------------------------------------------------------------------

def test_catches_ule_load_counter_corruption():
    engine = make_engine("ule")
    churn(engine)

    def corrupt():
        engine.machine.cores[0].rq.load += 1

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    err = exc_info.value
    # ULE's nr_runnable() IS tdq.load, so the generic queue-count
    # check may name the mismatch before the ULE-specific one does
    assert err.invariant in ("ule-load", "nr-runnable")
    assert err.time_ns == msec(1)
    assert err.cpu == 0


def test_catches_negative_ule_load():
    engine = make_engine("ule", ncpus=1)

    def corrupt():
        engine.machine.cores[0].rq.load = -1

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    assert exc_info.value.invariant in ("ule-load", "nr-runnable")


def test_catches_ule_nr_loaded_corruption():
    engine = make_engine("ule")
    churn(engine)

    def corrupt():
        engine.scheduler._nr_loaded += 1

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    assert exc_info.value.invariant in ("ule-nr-loaded", "ule-load")


def test_catches_cfs_nr_running_corruption():
    engine = make_engine("cfs")
    churn(engine)

    def corrupt():
        fair = engine.scheduler
        fair.cpurq(engine.machine.cores[0]).root.nr_running += 1

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    err = exc_info.value
    assert err.invariant in ("cfs-nr-running", "nr-runnable",
                             "cfs-h-nr-running")
    assert err.cpu == 0


def test_catches_cfs_min_vruntime_regression():
    engine = make_engine("cfs")
    churn(engine)

    def corrupt():
        rq = engine.scheduler.cpurq(engine.machine.cores[0]).root
        rq.min_vruntime -= 1

    # let vruntime advance first so the decrement is a regression
    inject(engine, msec(3), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(6))
    assert exc_info.value.invariant == "cfs-min-vruntime"
    assert "backwards" in str(exc_info.value)


# ----------------------------------------------------------------------
# bug injection: double enqueue / two runqueues
# ----------------------------------------------------------------------

def test_catches_double_enqueue():
    engine = make_engine("fifo")
    threads = churn(engine)

    def corrupt():
        # append an already-queued thread to its own runqueue again
        core = engine.machine.cores[0]
        for thread in threads:
            if thread.rq_cpu == core.index:
                core.rq.queue.append(thread)
                return

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    err = exc_info.value
    assert err.invariant in ("double-enqueue", "nr-runnable")
    assert err.time_ns == msec(1)


def test_catches_thread_on_two_runqueues():
    engine = make_engine("fifo", ncpus=2)
    threads = churn(engine)

    def corrupt():
        # mirror a cpu0-queued thread onto cpu1's runqueue
        c0, c1 = engine.machine.cores[:2]
        for thread in threads:
            if thread.rq_cpu == 0:
                c1.rq.queue.append(thread)
                return

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    err = exc_info.value
    assert err.invariant in ("two-runqueues", "rq-cpu-mismatch",
                             "nr-runnable")


# ----------------------------------------------------------------------
# bug injection: rbtree order corruption
# ----------------------------------------------------------------------

def _first_populated_cfs_tree(engine):
    for core in engine.machine.cores:
        tree = engine.scheduler.cpurq(core).root.tree
        if len(tree):
            return tree
    return None


def test_catches_rbtree_order_corruption():
    engine = make_engine("cfs", ncpus=1)
    churn(engine, count=5)

    state = {}

    def corrupt():
        tree = _first_populated_cfs_tree(engine)
        if tree is None:  # retry until the timeline has entries
            inject(engine, engine.now + usec(50), corrupt)
            return
        # push the leftmost node's key past everyone else's: the
        # node dict and tree structure now disagree on ordering
        node = tree._nodes[tree.min_key()]
        del tree._nodes[node.key]
        node.key = (node.key[0] + sec(10), node.key[1])
        tree._nodes[node.key] = node
        state["corrupted"] = True

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(20))
    assert state.get("corrupted")
    err = exc_info.value
    assert err.invariant in ("rbtree-order", "rbtree-leftmost",
                             "rbtree-structure")
    assert "cpu0" in str(err)


# ----------------------------------------------------------------------
# bug injection: tickless contract
# ----------------------------------------------------------------------

def test_catches_tick_counter_corruption():
    engine = make_engine("cfs")
    churn(engine)

    def corrupt():
        # claim a busy core's tick is parked without telling the engine
        for core in engine.machine.cores:
            if core.current is not None:
                core.tick_stopped = True
                return

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    assert exc_info.value.invariant == "tick-counter"


def test_catches_stopped_counter_drift():
    engine = make_engine("cfs")
    churn(engine)

    def corrupt():
        engine._nr_stopped_ticks += 1

    inject(engine, msec(1), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    assert exc_info.value.invariant == "tick-counter"


# ----------------------------------------------------------------------
# error context
# ----------------------------------------------------------------------

def test_error_carries_trace_and_event():
    engine = make_engine("ule")
    churn(engine)

    def corrupt():
        engine.machine.cores[0].rq.load += 1

    inject(engine, msec(2), corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run(until=msec(5))
    err = exc_info.value
    # the churners have switched/slept by 2 ms, so trace is populated
    assert err.trace
    assert any("switch" in entry or "wake" in entry
               for entry in err.trace)
    assert err.event  # the label of the event that tripped the check
    rendered = str(err)
    assert f"[{err.invariant}]" in rendered
    assert "recent trace:" in rendered
    assert f"t={msec(2)}ns" in rendered


def test_sanitizer_error_is_simulation_error():
    assert issubclass(SanitizerError, SimulationError)


# ----------------------------------------------------------------------
# end-to-end smoke: one fig5 cell per scheduler under --sanitize
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", SMOKE_SCHEDULERS)
def test_fig5_smoke_cell_sanitized(sched):
    out = run_app("MG", sched, sanitize=True)
    assert out["perf"] > 0


def test_sanitized_multicore_run_clean():
    """A 4-core mixed run under each scheduler stays invariant-clean."""
    for sched in SMOKE_SCHEDULERS:
        engine = make_exp_engine(sched, ncpus=4, seed=3,
                                 ctx_switch_cost_ns=usec(15),
                                 sanitize=True)
        churn(engine, count=8)
        engine.run(until=msec(50))
        assert engine.sanitizer.checks_run > 0
