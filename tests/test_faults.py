"""Fault-injection subsystem: determinism contract, hotplug
drain/rebalance, oracle bounds under chaos, plan round-trips.

The two headline guarantees (docs/fault-injection.md):

* the *empty* plan is the identity — ``Engine(faults=FaultPlan())``
  produces a byte-identical schedule digest to ``faults=None``;
* the same (scenario, plan) pair always replays the same faults —
  chaos runs are as deterministic as fault-free ones.
"""

import pytest

from repro.core.clock import msec, sec
from repro.core.errors import SimulationError
from repro.faults import (ClockCoarsen, CoreOffline, CoreOnline,
                          FaultPlan, IpiDelay, IpiDrop, ThreadStall,
                          TickJitter, random_plan)
from repro.testing.fuzzer import (FuzzThread, Scenario, build_engine,
                                  run_scenario)
from repro.testing.oracles import (OracleFailure, check_scenario,
                                   run_with_oracles)
from repro.tracing.digest import schedule_digest

SCHEDS = ("cfs", "ule")


def _mixed_scenario(seed=3, ncpus=4):
    """A small mixed run/sleep/yield scenario on a 4-CPU machine."""
    return Scenario(seed=seed, ncpus=ncpus, threads=(
        FuzzThread("f0", plan=(("run", 8), ("sleep", 4), ("run", 8))),
        FuzzThread("f1", nice=5,
                   plan=(("run", 6), ("yield", 0), ("run", 6))),
        FuzzThread("f2", spawn_at_ms=3,
                   plan=(("sleep", 5), ("run", 10))),
        FuzzThread("f3", affinity=(1, 2),
                   plan=(("run", 12), ("sleep", 3), ("run", 4))),
    ))


# ---------------------------------------------------------------- identity


@pytest.mark.parametrize("sched", SCHEDS)
def test_empty_plan_is_digest_identical(sched):
    engine_plain, _, _ = run_scenario(_mixed_scenario(), sched)
    engine_empty, _, _ = run_scenario(_mixed_scenario(), sched,
                                      faults=FaultPlan())
    assert engine_empty.faults is None
    assert schedule_digest(engine_empty) == \
        schedule_digest(engine_plain)


@pytest.mark.parametrize("sched", SCHEDS)
def test_same_plan_replays_identically(sched):
    plan = random_plan(11, 4, msec(60), thread_names=("f0", "f1"))
    assert not plan.is_empty()
    runs = [run_scenario(_mixed_scenario(), sched, faults=plan)[0]
            for _ in range(2)]
    assert schedule_digest(runs[0]) == schedule_digest(runs[1])
    assert runs[0].faults.applied == runs[1].faults.applied


def test_nonempty_plan_perturbs_the_digest():
    plan = FaultPlan(faults=(
        TickJitter(start_ns=0, end_ns=sec(1), max_jitter_ns=500_000),))
    plain, _, _ = run_scenario(_mixed_scenario(), "cfs")
    chaotic, _, _ = run_scenario(_mixed_scenario(), "cfs", faults=plan)
    assert chaotic.faults is not None
    assert schedule_digest(chaotic) != schedule_digest(plain)


# ---------------------------------------------------------------- hotplug


@pytest.mark.parametrize("sched", SCHEDS)
def test_offline_drains_and_online_rebalances(sched):
    plan = FaultPlan(faults=(CoreOffline(at_ns=msec(5), cpu=2),
                             CoreOnline(at_ns=msec(20), cpu=2)))
    scenario = Scenario(seed=1, ncpus=4, threads=tuple(
        FuzzThread(f"f{i}", plan=(("run", 40),)) for i in range(8)))
    engine, threads = build_engine(scenario, sched, sanitize=True,
                                   faults=plan)

    engine.run(until=msec(10))
    core = engine.machine.cores[2]
    assert not core.online
    assert engine.nr_runnable_on(2) == 0
    assert core.current is None
    assert 2 not in engine.machine.online_cpus()

    engine.run(until=msec(35))
    assert core.online
    assert 2 in engine.machine.online_cpus()
    # With 8 CPU-bound threads on 4 cores, the restored core picks up
    # work again (CFS newidle/periodic balance, ULE idle steal).
    assert engine.nr_runnable_on(2) > 0

    reason = engine.run(until=sec(2))
    assert reason == "all-exited"
    assert engine.metrics.counter("engine.hotplug_offlines") == 1
    assert engine.metrics.counter("engine.hotplug_onlines") == 1
    for thread in threads:
        assert thread.total_runtime == msec(40)


@pytest.mark.parametrize("sched", SCHEDS)
def test_offline_breaks_affinity_when_no_online_cpu_allowed(sched):
    plan = FaultPlan(faults=(CoreOffline(at_ns=msec(5), cpu=1),))
    scenario = Scenario(seed=1, ncpus=2, threads=(
        FuzzThread("pinned", affinity=(1,), plan=(("run", 30),)),))
    engine, threads, reason = run_scenario(scenario, sched,
                                           faults=plan)
    assert reason == "all-exited"
    assert threads[0].total_runtime == msec(30)
    assert threads[0].affinity is None
    assert any(kind == "affinity-broken" and detail == "pinned"
               for _, kind, detail in engine.faults.applied)


def test_offlining_last_core_is_refused():
    plan = FaultPlan(faults=(CoreOffline(at_ns=msec(1), cpu=0),))
    scenario = Scenario(seed=1, ncpus=1, threads=(
        FuzzThread("f0", plan=(("run", 5),)),))
    with pytest.raises(SimulationError):
        run_scenario(scenario, "cfs", faults=plan)


# ------------------------------------------------------------- stalls, IPIs


@pytest.mark.parametrize("sched", SCHEDS)
def test_stall_delays_but_preserves_runtime(sched):
    plan = FaultPlan(faults=(
        ThreadStall(at_ns=msec(5), thread="f0",
                    duration_ns=msec(15)),))
    scenario = Scenario(seed=1, ncpus=1, threads=(
        FuzzThread("f0", plan=(("run", 20),)),))
    engine, threads, reason = run_scenario(scenario, sched,
                                           faults=plan)
    assert reason == "all-exited"
    t = threads[0]
    assert t.total_runtime == msec(20)
    assert t.total_sleeptime == 0
    assert t.total_stalltime == msec(15)
    # 20 ms of work stalled for 15 ms cannot finish before 35 ms.
    assert engine.now >= msec(35)
    assert engine.metrics.counter("engine.stalls") == 1


def test_stall_on_sleeping_thread_is_skipped():
    plan = FaultPlan(faults=(
        ThreadStall(at_ns=msec(5), thread="f0",
                    duration_ns=msec(10)),))
    scenario = Scenario(seed=1, ncpus=1, threads=(
        FuzzThread("f0", plan=(("sleep", 10), ("run", 5))),))
    engine, threads, _ = run_scenario(scenario, "cfs", faults=plan)
    assert threads[0].total_stalltime == 0
    assert any(kind == "stall-skipped"
               for _, kind, _ in engine.faults.applied)


@pytest.mark.parametrize("sched", SCHEDS)
def test_dropped_ipis_are_redelivered_not_lost(sched):
    # Drop EVERY resched IPI in the window; redelivery keeps the
    # system work-conserving, so the oracles still pass.
    plan = FaultPlan(faults=(
        IpiDrop(start_ns=0, end_ns=sec(1), prob=1.0,
                redeliver_ns=msec(1)),))
    summary = run_with_oracles(_mixed_scenario(), sched, faults=plan)
    assert summary  # all oracle equalities held


def test_ipi_delay_and_jitter_pass_the_oracles():
    plan = FaultPlan(seed=9, faults=(
        IpiDelay(start_ns=0, end_ns=sec(1), max_delay_ns=200_000),
        TickJitter(start_ns=0, end_ns=sec(1), max_jitter_ns=300_000),))
    for sched in SCHEDS:
        run_with_oracles(_mixed_scenario(), sched, faults=plan)


# ------------------------------------------------------------- coarsening


@pytest.mark.parametrize("sched", SCHEDS)
def test_coarsening_bounds_sleeptime(sched):
    gran = msec(1)
    plan = FaultPlan(faults=(
        ClockCoarsen(start_ns=0, end_ns=sec(1),
                     granularity_ns=gran),))
    scenario = Scenario(seed=1, ncpus=1, threads=(
        FuzzThread("f0", plan=(("run", 2), ("sleep", 3), ("run", 2),
                               ("sleep", 5), ("run", 2))),))
    # run_with_oracles itself asserts the documented bound
    # [requested, requested + nsleeps * granularity] ...
    run_with_oracles(scenario, sched, faults=plan)
    # ... and an explicit re-run pins the raw numbers down.
    _, threads, _ = run_scenario(scenario, sched, faults=plan)
    slept = threads[0].total_sleeptime
    assert msec(8) <= slept <= msec(8) + 2 * gran


# ------------------------------------------------------------- chaos fuzz


@pytest.mark.parametrize("seed", (0, 1))
def test_chaos_differential_smoke(seed):
    from repro.testing.campaign import chaos_plan
    from repro.testing.fuzzer import generate_scenario
    scenario = generate_scenario(seed, smoke=True)
    check_scenario(scenario, SCHEDS, faults=chaos_plan(scenario))


def test_random_plan_protects_cpu0_and_pairs_hotplug():
    for seed in range(20):
        plan = random_plan(seed, 8, msec(100),
                           thread_names=("a", "b"))
        offs = [f for f in plan.faults if isinstance(f, CoreOffline)]
        ons = [f for f in plan.faults if isinstance(f, CoreOnline)]
        assert all(f.cpu != 0 for f in offs)
        assert sorted(f.cpu for f in offs) == \
            sorted(f.cpu for f in ons)
        for off in offs:
            on = next(f for f in ons if f.cpu == off.cpu)
            assert off.at_ns < on.at_ns <= msec(100)
        plan.validate(ncpus=8)


def test_random_plan_is_a_pure_function_of_its_inputs():
    a = random_plan(7, 4, msec(50), thread_names=("x",))
    b = random_plan(7, 4, msec(50), thread_names=("x",))
    assert a == b
    assert random_plan(8, 4, msec(50)) != random_plan(9, 4, msec(50))


# ------------------------------------------------------------- JSON plans


def test_plan_json_roundtrip(tmp_path):
    plan = random_plan(5, 8, msec(200), thread_names=("f0", "f1"))
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.loads(plan.dumps()) == plan
    path = tmp_path / "plan.json"
    plan.dump(path)
    assert FaultPlan.load(path) == plan


def test_plan_rejects_unknown_kind_and_bad_values():
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"faults": [{"kind": "meteor-strike"}]})
    with pytest.raises(ValueError):
        IpiDrop(start_ns=0, end_ns=1, prob=1.5,
                redeliver_ns=1).validate()
    with pytest.raises(ValueError):
        TickJitter(start_ns=5, end_ns=2, max_jitter_ns=1).validate()
    with pytest.raises(ValueError):
        CoreOffline(at_ns=0, cpu=9).validate(ncpus=4)


def test_canned_chaos_smoke_plan_parses():
    from pathlib import Path
    import repro.faults.__main__ as chaos_main
    plan = FaultPlan.load(Path(chaos_main.CANNED_PLAN))
    assert not plan.is_empty()
    plan.validate(ncpus=1)
