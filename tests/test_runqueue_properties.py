"""Property-based tests on the schedulers' runqueue data structures:
random enqueue/dequeue/pick sequences preserve all counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfs.entity import SchedEntity
from repro.cfs.params import CfsTunables
from repro.cfs.runqueue import CfsRq
from repro.cfs.weights import NICE_0_LOAD


def fresh_entity(vruntime):
    se = SchedEntity(thread=None, weight=NICE_0_LOAD)
    se.vruntime = vruntime
    return se


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["enq", "deq", "pick", "put",
                                           "charge"]),
                          st.integers(0, 10**9)),
                min_size=1, max_size=60))
def test_property_cfs_rq_counters_consistent(ops):
    rq = CfsRq(0, CfsTunables())
    queued = []
    last_min = 0
    for op, value in ops:
        if op == "enq":
            se = fresh_entity(value)
            rq.place_entity(se, initial=False)
            rq.enqueue_entity(se)
            queued.append(se)
        elif op == "deq" and queued:
            se = queued.pop()
            if se is rq.curr:
                rq.put_prev(se)
            rq.dequeue_entity(se)
        elif op == "pick" and rq.curr is None:
            se = rq.pick_first()
            if se is not None:
                rq.set_next(se)
        elif op == "put" and rq.curr is not None:
            rq.put_prev(rq.curr)
        elif op == "charge" and rq.curr is not None:
            rq.update_curr(value % 10**7)
        # invariants after every operation
        assert rq.nr_running == len(queued)
        assert rq.load_weight == len(queued) * NICE_0_LOAD
        in_tree = sum(1 for _ in rq.tree.values())
        expected_tree = len(queued) - (1 if rq.curr is not None else 0)
        assert in_tree == expected_tree
        assert rq.min_vruntime >= last_min  # monotonic
        last_min = rq.min_vruntime
        rq.tree.check_invariants()


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["add", "rem", "choose"]),
                          st.integers(0, 63), st.booleans()),
                min_size=1, max_size=60))
def test_property_ule_runq_count_consistent(ops):
    from repro.ule.runq import RunQueue

    class T:
        n = 0

        def __init__(self):
            T.n += 1
            self.tid = T.n

    rq = RunQueue(64)
    queued = {}  # thread -> pri
    for op, pri, head in ops:
        if op == "add":
            t = T()
            rq.add(t, pri, at_head=head)
            queued[t] = pri
        elif op == "rem" and queued:
            t, p = next(iter(queued.items()))
            rq.remove(t, p)
            del queued[t]
        elif op == "choose":
            t = rq.choose()
            if t is not None:
                assert t in queued
                # chosen thread had the best occupied priority
                assert queued[t] == min(queued.values())
                del queued[t]
        assert len(rq) == len(queued)
        rq.check_invariants()
    assert sorted(t.tid for t in rq.threads()) == \
        sorted(t.tid for t in queued)


def test_cfs_rq_vruntime_accounting_progression():
    rq = CfsRq(0, CfsTunables())
    a = fresh_entity(0)
    b = fresh_entity(0)
    rq.enqueue_entity(a)
    rq.enqueue_entity(b)
    rq.set_next(a)
    rq.update_curr(1_000_000)
    assert a.vruntime == 1_000_000  # nice-0: wall speed
    assert a.sum_exec == 1_000_000
    assert a.slice_exec == 1_000_000
    rq.put_prev(a)
    # b is now leftmost
    assert rq.pick_first() is b
