"""Tests for machine topology descriptions."""

import pytest

from repro.core.errors import TopologyError
from repro.core.topology import (Topology, TopologyLevel, i7_3770,
                                 opteron_6172, single_core, smp)


def test_single_core():
    topo = single_core()
    assert topo.ncpus == 1
    assert topo.llc_of(0) == {0}
    assert topo.node_of(0) == {0}


def test_opteron_shape_matches_paper():
    """The paper's machine: 32 cores, 4 NUMA nodes of 8 cores."""
    topo = opteron_6172()
    assert topo.ncpus == 32
    assert len(topo.level("numa").groups) == 4
    assert all(len(g) == 8 for g in topo.level("numa").groups)
    # LLC == node on this machine
    assert topo.llc_of(0) == topo.node_of(0)
    assert topo.shares_llc(0, 7)
    assert not topo.shares_llc(0, 8)


def test_i7_has_smt_level():
    topo = i7_3770()
    assert topo.ncpus == 8
    assert topo.siblings("smt", 0) == {1}
    assert topo.shares_llc(0, 7)


def test_levels_above_walk_widens():
    topo = opteron_6172()
    walk = list(topo.levels_above(9))
    names = [name for name, _ in walk]
    assert names == ["llc", "numa", "machine"]
    sizes = [len(group) for _, group in walk]
    assert sizes == sorted(sizes)
    assert sizes[-1] == 32


def test_invalid_overlapping_groups_rejected():
    with pytest.raises(TopologyError):
        Topology(2, [TopologyLevel.make("machine", [[0, 1], [1]])])


def test_invalid_partial_cover_rejected():
    with pytest.raises(TopologyError):
        Topology(4, [TopologyLevel.make("machine", [[0, 1, 2]])])


def test_invalid_nesting_rejected():
    with pytest.raises(TopologyError):
        Topology(4, [
            TopologyLevel.make("llc", [[0, 1], [2, 3]]),
            TopologyLevel.make("numa", [[0, 2], [1, 3]]),
            TopologyLevel.make("machine", [[0, 1, 2, 3]]),
        ])


def test_top_level_must_be_single_group():
    with pytest.raises(TopologyError):
        Topology(4, [TopologyLevel.make("machine", [[0, 1], [2, 3]])])


def test_smp_node_major_numbering():
    topo = smp(8, cpus_per_llc=2, numa_nodes=2)
    assert topo.node_of(0) == {0, 1, 2, 3}
    assert topo.node_of(5) == {4, 5, 6, 7}
    assert topo.llc_of(0) == {0, 1}


def test_unknown_level_raises():
    topo = single_core()
    with pytest.raises(TopologyError):
        topo.level("smt")
    with pytest.raises(TopologyError):
        topo.group_of("smt", 0)
