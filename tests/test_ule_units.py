"""Unit tests for ULE building blocks: runq, interactivity, priority,
tunables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import msec, sec
from repro.ule.interactivity import SleepRunHistory
from repro.ule.params import UleTunables
from repro.ule.priority import (batch_priority, compute_priority,
                                interactive_priority)
from repro.ule.runq import RunQueue


TUN = UleTunables()


# ------------------------------------------------------------------ runq

class FakeThread:
    def __init__(self, name):
        self.name = name


def test_runq_fifo_within_priority():
    q = RunQueue()
    a, b = FakeThread("a"), FakeThread("b")
    q.add(a, 5)
    q.add(b, 5)
    assert q.choose() is a
    assert q.choose() is b
    assert q.choose() is None


def test_runq_priority_order():
    q = RunQueue()
    lo, hi = FakeThread("lo"), FakeThread("hi")
    q.add(lo, 40)
    q.add(hi, 3)
    assert q.first_priority() == 3
    assert q.choose() is hi
    assert q.choose() is lo


def test_runq_at_head():
    q = RunQueue()
    a, b = FakeThread("a"), FakeThread("b")
    q.add(a, 5)
    q.add(b, 5, at_head=True)
    assert q.choose() is b


def test_runq_remove():
    q = RunQueue()
    a, b = FakeThread("a"), FakeThread("b")
    q.add(a, 5)
    q.add(b, 7)
    q.remove(a, 5)
    assert len(q) == 1
    assert q.choose() is b
    q.check_invariants()


def test_runq_remove_missing_raises():
    from repro.core.errors import SchedulerError
    q = RunQueue()
    with pytest.raises(SchedulerError):
        q.remove(FakeThread("x"), 5)


def test_runq_priority_bounds():
    from repro.core.errors import SchedulerError
    q = RunQueue(64)
    with pytest.raises(SchedulerError):
        q.add(FakeThread("x"), 64)
    with pytest.raises(SchedulerError):
        q.add(FakeThread("x"), -1)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=50))
def test_property_runq_drains_in_priority_order(priorities):
    q = RunQueue()
    for i, pri in enumerate(priorities):
        q.add(FakeThread(i), pri)
        q.check_invariants()
    drained = []
    while q:
        pri = q.first_priority()
        q.choose()
        drained.append(pri)
        q.check_invariants()
    assert drained == sorted(priorities)


# -------------------------------------------------------- interactivity

def test_penalty_all_sleep_is_zero():
    hist = SleepRunHistory(TUN, runtime=0, sleeptime=sec(3))
    assert hist.penalty() == 0


def test_penalty_all_run_is_max():
    hist = SleepRunHistory(TUN, runtime=sec(3), sleeptime=0)
    assert hist.penalty() == 100


def test_penalty_equal_split_is_mid():
    # FreeBSD returns exactly HALF (50) at r == s; the formula is
    # continuous around that point.
    hist = SleepRunHistory(TUN, runtime=sec(1), sleeptime=sec(1))
    assert hist.penalty() == 50
    hist = SleepRunHistory(TUN, runtime=sec(1), sleeptime=sec(1) + 1)
    assert 49 <= hist.penalty() <= 50


def test_penalty_formula_matches_freebsd():
    # sleeping 2x as much as running: m * r/s = 25
    hist = SleepRunHistory(TUN, runtime=sec(1), sleeptime=sec(2))
    assert hist.penalty() == 25
    # running 2x as much as sleeping: 2m - m * s/r = 75
    hist = SleepRunHistory(TUN, runtime=sec(2), sleeptime=sec(1))
    assert hist.penalty() == 75
    # running 4x as much: 2m - m/4 = 87 (not the paper-typo 62.5)
    hist = SleepRunHistory(TUN, runtime=sec(4), sleeptime=sec(1))
    assert hist.penalty() == 87


def test_penalty_monotone_in_runtime():
    pens = [SleepRunHistory(TUN, runtime=r, sleeptime=sec(1)).penalty()
            for r in range(0, 5 * 10**9, 10**8)]
    assert pens == sorted(pens)


def test_interactive_threshold_sixty_percent_sleep():
    """Paper: with nice 0 the threshold corresponds roughly to sleeping
    more than 60% of the time."""
    # 62% sleep: penalty = 50/(0.62/0.38) = 30.6 -> just interactive
    hist = SleepRunHistory(TUN, runtime=msec(380), sleeptime=msec(625))
    assert hist.is_interactive(0)
    # 50% sleep: not interactive
    hist = SleepRunHistory(TUN, runtime=msec(500), sleeptime=msec(500))
    assert not hist.is_interactive(0)


def test_negative_nice_helps_interactivity():
    hist = SleepRunHistory(TUN, runtime=msec(500), sleeptime=msec(600))
    # penalty ~41: batch at nice 0, interactive at nice -15
    assert not hist.is_interactive(0)
    assert hist.is_interactive(-15)


def test_history_decay_keeps_window_bounded():
    hist = SleepRunHistory(TUN)
    for _ in range(100):
        hist.add_runtime(msec(200))
        hist.add_sleeptime(msec(100))
    assert hist.runtime + hist.sleeptime <= (TUN.slp_run_max_ns // 5) * 6


def test_history_decay_preserves_ratio_roughly():
    hist = SleepRunHistory(TUN)
    for _ in range(200):
        hist.add_runtime(msec(100))
        hist.add_sleeptime(msec(300))
    share = hist.cpu_share()
    assert share == pytest.approx(0.25, abs=0.05)


def test_fork_copy_and_absorb():
    parent = SleepRunHistory(TUN, runtime=sec(1), sleeptime=sec(2))
    child = parent.copy()
    assert child.penalty() == parent.penalty()
    child.add_runtime(sec(1))
    before = parent.runtime
    parent.absorb(child)
    assert parent.runtime > before


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 10**10), st.integers(0, 10**10))
def test_property_penalty_bounded(run, sleep):
    hist = SleepRunHistory(TUN, runtime=run, sleeptime=sleep)
    assert 0 <= hist.penalty() <= TUN.interact_max


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 10**9)),
                min_size=1, max_size=40))
def test_property_history_window_bounded(steps):
    hist = SleepRunHistory(TUN)
    for is_run, delta in steps:
        if is_run:
            hist.add_runtime(delta)
        else:
            hist.add_sleeptime(delta)
        assert hist.runtime + hist.sleeptime <= \
            max((TUN.slp_run_max_ns // 5) * 6, delta + TUN.slp_run_max_ns)


# ------------------------------------------------------------ priority

def test_interactive_priority_interpolation():
    assert interactive_priority(TUN, 0) == 0
    assert interactive_priority(TUN, TUN.interact_thresh) == \
        TUN.interact_prio_max
    # monotone
    pris = [interactive_priority(TUN, s) for s in range(31)]
    assert pris == sorted(pris)


def test_batch_priority_rises_with_usage():
    lazy = SleepRunHistory(TUN, runtime=msec(400), sleeptime=msec(100))
    hog = SleepRunHistory(TUN, runtime=sec(4), sleeptime=0)
    assert batch_priority(TUN, hog, 0) > batch_priority(TUN, lazy, 0)


def test_batch_priority_in_band():
    for run, sleep, nice in [(0, 0, -20), (sec(5), 0, 19),
                             (sec(1), sec(1), 0)]:
        hist = SleepRunHistory(TUN, runtime=run, sleeptime=sleep)
        pri = batch_priority(TUN, hist, nice)
        assert TUN.batch_prio_min <= pri <= TUN.nqueues - 1


def test_compute_priority_classifies():
    sleeper = SleepRunHistory(TUN, runtime=msec(100), sleeptime=sec(2))
    pri, interactive = compute_priority(TUN, sleeper, 0)
    assert interactive
    assert pri <= TUN.interact_prio_max
    hog = SleepRunHistory(TUN, runtime=sec(3), sleeptime=0)
    pri, interactive = compute_priority(TUN, hog, 0)
    assert not interactive
    assert pri >= TUN.batch_prio_min


# ------------------------------------------------------------ tunables

def test_slice_matches_paper():
    tun = UleTunables()
    # one thread: 10 ticks (~78 ms)
    assert tun.slice_for_load(1) == 10
    assert abs(tun.slice_ns - msec(78)) < msec(1)
    # divided by thread count
    assert tun.slice_for_load(2) == 5
    assert tun.slice_for_load(10) == 1
    # floored at 1 tick (1/127th of a second)
    assert tun.slice_for_load(100) == 1
