"""The flat sorted-array CFS timeline (repro/cfs/timeline.py).

Three layers:

* unit — the ordered-map surface and the maintained
  ``leftmost_value`` cache;
* property — a seeded op fuzzer drives a :class:`FlatTimeline` and an
  :class:`RBTree` through identical insert/remove sequences and
  asserts identical observable state after every op (the two backends
  must be indistinguishable through the ``CfsRq`` seam);
* engine differential — fuzzer scenarios under CFS with
  ``flat_timeline`` on vs. off must produce the same canonical
  schedule digest, stop reason, and final time.
"""

import random

import pytest

from repro.cfs.rbtree import RBTree
from repro.cfs.timeline import FlatTimeline
from repro.testing.fuzzer import generate_scenario, run_scenario
from repro.tracing.digest import schedule_digest

# ----------------------------------------------------------------------
# unit
# ----------------------------------------------------------------------


def test_insert_orders_and_tracks_leftmost():
    tl = FlatTimeline()
    assert not tl and len(tl) == 0
    assert tl.min_key() is None
    assert tl.leftmost_value is None
    tl.insert((5, 1), "b")
    tl.insert((3, 1), "a")
    tl.insert((9, 1), "c")
    assert list(tl.items()) == [((3, 1), "a"), ((5, 1), "b"),
                                ((9, 1), "c")]
    assert tl.min_key() == (3, 1)
    assert tl.leftmost_value == "a"
    assert tl.min_value() == "a"
    assert tl.second_value() == "b"
    assert (5, 1) in tl and (4, 1) not in tl
    tl.check_invariants()


def test_duplicate_insert_raises():
    tl = FlatTimeline()
    tl.insert((1, 1), "a")
    with pytest.raises(KeyError):
        tl.insert((1, 1), "again")


def test_remove_returns_value_and_refreshes_leftmost():
    tl = FlatTimeline()
    for k, v in (((1, 0), "a"), ((2, 0), "b"), ((3, 0), "c")):
        tl.insert(k, v)
    assert tl.remove((1, 0)) == "a"
    assert tl.leftmost_value == "b"
    assert tl.remove((3, 0)) == "c"
    assert tl.leftmost_value == "b"
    assert tl.remove((2, 0)) == "b"
    assert tl.leftmost_value is None
    assert tl.min_key() is None
    assert tl.second_value() is None
    tl.check_invariants()


def test_remove_absent_raises():
    tl = FlatTimeline()
    tl.insert((1, 0), "a")
    with pytest.raises(KeyError):
        tl.remove((2, 0))


def test_insert_below_leftmost_replaces_cache():
    tl = FlatTimeline()
    tl.insert((10, 0), "old")
    tl.insert((2, 0), "new")
    assert tl.leftmost_value == "new"
    assert tl.second_value() == "old"
    tl.check_invariants()


# ----------------------------------------------------------------------
# property: backend indistinguishability
# ----------------------------------------------------------------------


def _observe(backend):
    return (len(backend), backend.min_key(), backend.min_value(),
            backend.second_value(), backend.leftmost_value,
            list(backend.items()), list(backend.values()))


@pytest.mark.parametrize("seed", range(8))
def test_flat_matches_rbtree_under_fuzzed_ops(seed):
    rng = random.Random(f"flat-timeline:{seed}")
    flat, tree = FlatTimeline(), RBTree()
    live: list = []
    for step in range(300):
        if live and rng.random() < 0.4:
            key = live.pop(rng.randrange(len(live)))
            assert flat.remove(key) == tree.remove(key)
        else:
            key = (rng.randrange(50), rng.randrange(50))
            if key in live:
                with pytest.raises(KeyError):
                    flat.insert(key, str(key))
                with pytest.raises(KeyError):
                    tree.insert(key, str(key))
            else:
                flat.insert(key, str(key))
                tree.insert(key, str(key))
                live.append(key)
        assert _observe(flat) == _observe(tree), (seed, step)
        flat.check_invariants()
        tree.check_invariants()


# ----------------------------------------------------------------------
# engine differential: digest-identical backends
# ----------------------------------------------------------------------


def _run(scenario, flat):
    from repro.core.clock import msec
    from repro.core.engine import Engine
    from repro.core.topology import smp
    from repro.sched import scheduler_factory
    from repro.testing.fuzzer import ThreadSpec, behavior_from_plan

    topo = smp(scenario.ncpus, cpus_per_llc=scenario.cpus_per_llc)
    engine = Engine(topo, scheduler_factory("cfs", flat_timeline=flat),
                    seed=scenario.seed)
    for ft in scenario.threads:
        engine.spawn(ThreadSpec(
            ft.name, behavior_from_plan(ft.plan), nice=ft.nice,
            affinity=(frozenset(ft.affinity)
                      if ft.affinity is not None else None),
            app=ft.app), at=msec(ft.spawn_at_ms))
    reason = engine.run(until=msec(scenario.until_ms))
    return schedule_digest(engine), reason, engine.now


@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_engine_digests_identical_under_both_backends(seed):
    scenario = generate_scenario(seed, smoke=True)
    assert _run(scenario, flat=True) == _run(scenario, flat=False), \
        scenario.describe()


def test_fast_mode_defaults_flat_timeline_on():
    """``CfsTunables.flat_timeline=None`` follows the engine's fast
    flag; an explicit setting wins either way."""
    from repro.cfs.timeline import FlatTimeline as FT
    from repro.core.engine import Engine
    from repro.core.topology import smp
    from repro.sched import scheduler_factory

    def backend(fast, **options):
        engine = Engine(smp(2), scheduler_factory("cfs", **options),
                        fast=fast)
        return type(engine.scheduler.cpurq(
            engine.machine.cores[0]).root.tree)

    assert backend(fast=False) is RBTree
    assert backend(fast=True) is FT
    assert backend(fast=True, flat_timeline=False) is RBTree
    assert backend(fast=False, flat_timeline=True) is FT
