"""Differential testing subsystem: fuzzer determinism, oracle runs,
and the mutation self-check.

The mutation self-check re-uses the sanitizer suite's bug-injection
style (tests/conftest.py ``inject``) through the oracle layer's
``corrupt`` hook: every injected bug class from tests/test_sanitizer.py
must surface as an :class:`~repro.testing.oracles.OracleFailure` — a
testing layer that can't fail is worse than none.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.clock import msec, sec
from repro.testing import (OracleFailure, Scenario, check_scenario,
                           fuzz_campaign, generate_scenario,
                           run_with_oracles, shrink)
from repro.testing.fuzzer import FuzzThread

FUZZ_SEEDS = range(10)


# ----------------------------------------------------------------------
# fuzzer determinism
# ----------------------------------------------------------------------

def test_generator_is_deterministic():
    for seed in range(40):
        a = generate_scenario(seed)
        b = generate_scenario(seed)
        assert a == b
        assert a.describe() == b.describe()


def test_generator_seeds_differ():
    scenarios = {generate_scenario(s) for s in range(40)}
    assert len(scenarios) > 35  # collisions would gut coverage


def test_smoke_scenarios_are_smaller():
    for seed in range(20):
        smoke = generate_scenario(seed, smoke=True)
        assert len(smoke.threads) <= 4
        assert all(len(t.plan) <= 4 for t in smoke.threads)


# ----------------------------------------------------------------------
# differential oracles over fuzz seeds
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_seed_passes_all_oracles(seed):
    check_scenario(generate_scenario(seed))


ZOO_SEEDS = range(3)  # bounded: the zoo adds 5 schedulers per seed


@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_zoo_passes_all_oracles(seed):
    """The policy-DSL zoo (docs/scheduler-zoo.md) through the same
    differential gate: every zoo policy must produce the exact
    per-thread outcome vector cfs does, on smoke scenarios."""
    from repro.testing import ZOO_SCHEDULERS
    check_scenario(generate_scenario(seed, smoke=True),
                   scheds=("cfs",) + tuple(ZOO_SCHEDULERS))


def test_campaign_results_identical_serial_vs_parallel():
    serial = fuzz_campaign(range(6), smoke=True, jobs=None)
    fanned = fuzz_campaign(range(6), smoke=True, jobs=2)
    assert serial == fanned
    assert all(r.ok for r in serial)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def _has_sleep_and_two_threads(scenario: Scenario) -> bool:
    return len(scenario.threads) >= 2 and any(
        kind == "sleep" for t in scenario.threads for kind, _ in t.plan)


def test_shrink_is_deterministic_and_minimal():
    ran = 0
    for seed in range(20):
        scenario = generate_scenario(seed)
        if not _has_sleep_and_two_threads(scenario):
            continue
        m1 = shrink(scenario, _has_sleep_and_two_threads)
        m2 = shrink(scenario, _has_sleep_and_two_threads)
        assert m1 == m2, "same input must shrink identically"
        assert m1.describe() == m2.describe()
        # minimal for this predicate: exactly two threads, a single
        # 1 ms sleep step left in one of them, everything neutralised
        assert len(m1.threads) == 2
        assert sum(len(t.plan) for t in m1.threads) == 2
        assert m1.ncpus == 1
        assert all(t.nice == 0 and t.affinity is None
                   and t.spawn_at_ms == 0 for t in m1.threads)
        ran += 1
        if ran >= 3:
            break
    assert ran >= 1, "no seed produced a shrinkable scenario"


def test_shrink_rejects_invalid_candidates():
    scenario = Scenario(seed=0, ncpus=1, threads=(
        FuzzThread("a", plan=(("run", 2),)),))
    # predicate always fails -> shrinker must still return a valid,
    # non-empty scenario
    minimal = shrink(scenario, lambda s: True)
    assert minimal.threads


# ----------------------------------------------------------------------
# mutation self-check: injected bug classes -> oracle failures
# ----------------------------------------------------------------------

#: a deterministic churn-style scenario that keeps runqueues populated
#: on both cores for the whole injection window
MUTATION_SCENARIO = Scenario(
    seed=99, ncpus=2,
    threads=tuple(
        FuzzThread(f"m{i}", spawn_at_ms=0,
                   plan=tuple(("run", 2) if j % 2 == 0 else ("sleep", 1)
                              for j in range(20)))
        for i in range(6)),
)


def _corrupt_ule_load(engine):
    engine.machine.cores[0].rq.load += 1


def _corrupt_ule_negative_load(engine):
    engine.machine.cores[0].rq.load = -1


def _corrupt_ule_nr_loaded(engine):
    engine.scheduler._nr_loaded += 1


def _corrupt_ule_classification(engine):
    # flip every cached classification; recomputation from history
    # must disagree at the next oracle checkpoint for at least the
    # threads that stay off-CPU meanwhile
    for t in engine.threads:
        if not t.has_exited:
            t.policy.interactive = not t.policy.interactive


def _fair(engine):
    sched = engine.scheduler
    return getattr(sched, "fair", sched)


def _corrupt_cfs_nr_running(engine):
    _fair(engine).cpurq(engine.machine.cores[0]).root.nr_running += 1


def _corrupt_cfs_min_vruntime(engine):
    _fair(engine).cpurq(engine.machine.cores[0]).root.min_vruntime -= 1


def _corrupt_cfs_vruntime_lag(engine):
    # catapult the running entity's vruntime: curr is not a timeline
    # node, so the rbtree stays consistent and only the fairness lag
    # bound can notice
    for core in engine.machine.cores:
        rq = _fair(engine).cpurq(core).root
        if rq.curr is not None:
            rq.curr.vruntime += sec(10)
            return


def _corrupt_double_enqueue(engine):
    core = engine.machine.cores[0]
    for thread in engine.threads:
        if thread.rq_cpu == core.index:
            core.rq.queue.append(thread)
            return


def _corrupt_two_runqueues(engine):
    c0, c1 = engine.machine.cores[:2]
    for thread in engine.threads:
        if thread.rq_cpu == 0:
            c1.rq.queue.append(thread)
            return


def _corrupt_runtime_accounting(engine):
    for t in engine.threads:
        if not t.has_exited:
            t.total_runtime += 12345
            return


def _corrupt_busy_accounting(engine):
    engine.machine.cores[0].busy_ns += 54321


def _corrupt_tick_counter(engine):
    for core in engine.machine.cores:
        if core.current is not None:
            core.tick_stopped = True
            return


BUG_CLASSES = [
    # (id, scheduler, corruption, oracles allowed to report it)
    ("ule-load", "ule", _corrupt_ule_load, {"sanitizer"}),
    ("ule-negative-load", "ule", _corrupt_ule_negative_load,
     {"sanitizer"}),
    ("ule-nr-loaded", "ule", _corrupt_ule_nr_loaded, {"sanitizer"}),
    ("ule-classification", "ule", _corrupt_ule_classification,
     {"ule-classification"}),
    ("cfs-nr-running", "cfs", _corrupt_cfs_nr_running, {"sanitizer"}),
    ("cfs-min-vruntime", "cfs", _corrupt_cfs_min_vruntime,
     {"sanitizer"}),
    ("cfs-vruntime-lag", "cfs", _corrupt_cfs_vruntime_lag,
     {"cfs-lag-bound"}),
    ("cfs-vruntime-lag-linux", "linux", _corrupt_cfs_vruntime_lag,
     {"cfs-lag-bound"}),
    ("double-enqueue", "fifo", _corrupt_double_enqueue, {"sanitizer"}),
    ("two-runqueues", "fifo", _corrupt_two_runqueues, {"sanitizer"}),
    ("runtime-theft", "cfs", _corrupt_runtime_accounting,
     {"requested-work", "work-conservation"}),
    ("busy-accounting", "ule", _corrupt_busy_accounting,
     {"work-conservation"}),
    ("tick-counter", "cfs", _corrupt_tick_counter, {"sanitizer"}),
]


@pytest.mark.parametrize("name,sched,corrupt,oracles",
                         BUG_CLASSES, ids=[c[0] for c in BUG_CLASSES])
def test_injected_bug_class_is_caught(name, sched, corrupt, oracles):
    with pytest.raises(OracleFailure) as exc_info:
        run_with_oracles(MUTATION_SCENARIO, sched,
                         corrupt=(msec(5), corrupt))
    assert exc_info.value.oracle in oracles, \
        f"{name}: caught by [{exc_info.value.oracle}], " \
        f"expected one of {oracles}"


def test_clean_mutation_scenario_passes():
    """The scenario the corruptions ride on is itself oracle-clean
    (otherwise the self-check would prove nothing)."""
    check_scenario(MUTATION_SCENARIO)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

REPO = Path(__file__).resolve().parents[1]


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.testing", *args],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        timeout=300)


def test_cli_fuzz_smoke_exits_zero():
    proc = _run_cli("fuzz", "--seeds", "4", "--smoke")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "4 seeds" in proc.stdout
    assert "0 failing" in proc.stdout


def test_cli_seed_range():
    proc = _run_cli("fuzz", "--seed-range", "7:9", "--smoke")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "2 seeds" in proc.stdout
