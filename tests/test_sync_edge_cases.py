"""Edge-case tests for the synchronization primitives."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec
from repro.core.errors import SimulationError
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory
from repro.sync import (Barrier, CascadingBarrier, Channel, CondVar,
                        Mutex, Pipe, Semaphore)


def make_engine(ncpus=2):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory("fifo"), seed=21)


def test_semaphore_up_many_wakes_many():
    eng = make_engine(ncpus=4)
    sem = Semaphore(eng, value=0)
    woken = []

    def waiter(ctx):
        yield sem.down()
        woken.append(ctx.thread.name)

    def releaser(ctx):
        yield Sleep(msec(5))
        yield sem.up(count=3)

    for i in range(3):
        eng.spawn(ThreadSpec(f"w{i}", waiter))
    eng.spawn(ThreadSpec("rel", releaser))
    eng.run(until=msec(100))
    assert sorted(woken) == ["w0", "w1", "w2"]
    assert sem.value == 0


def test_semaphore_up_surplus_accumulates():
    eng = make_engine()
    sem = Semaphore(eng, value=0)

    def releaser(ctx):
        yield sem.up(count=5)

    eng.spawn(ThreadSpec("rel", releaser))
    eng.run(until=msec(10))
    assert sem.value == 5


def test_semaphore_negative_value_rejected():
    eng = make_engine()
    with pytest.raises(ValueError):
        Semaphore(eng, value=-1)


def test_pipe_zero_capacity_rejected():
    eng = make_engine()
    with pytest.raises(ValueError):
        Pipe(eng, capacity=0)


def test_pipe_multiple_blocked_writers_commit_in_order():
    eng = make_engine(ncpus=4)
    pipe = Pipe(eng, capacity=1)
    order = []

    def writer(ctx):
        # stagger arrivals so the block order is deterministic
        yield Sleep(msec(ctx.thread.tags["delay"]))
        yield pipe.write(ctx.thread.name)

    def reader(ctx):
        yield Sleep(msec(50))
        for _ in range(4):
            msg = yield pipe.read()
            order.append(msg)

    for i, delay in enumerate([1, 2, 3, 4]):
        eng.spawn(ThreadSpec(f"wr{i}", writer, tags={"delay": delay}))
    eng.spawn(ThreadSpec("rd", reader))
    eng.run(until=sec(1))
    assert order == ["wr0", "wr1", "wr2", "wr3"]


def test_mutex_double_acquire_raises():
    eng = make_engine()
    mutex = Mutex(eng)

    def bad(ctx):
        yield mutex.acquire()
        yield mutex.acquire()

    eng.spawn(ThreadSpec("bad", bad))
    with pytest.raises(SimulationError):
        eng.run(until=msec(100))


def test_condvar_wait_without_mutex_raises():
    eng = make_engine()
    mutex = Mutex(eng)
    cond = CondVar(eng)

    def bad(ctx):
        yield cond.wait(mutex)

    eng.spawn(ThreadSpec("bad", bad))
    with pytest.raises(SimulationError):
        eng.run(until=msec(100))


def test_condvar_signal_with_no_waiters_is_noop():
    eng = make_engine()
    mutex = Mutex(eng)
    cond = CondVar(eng)
    done = []

    def signaller(ctx):
        yield mutex.acquire()
        yield cond.signal()
        yield cond.broadcast()
        yield mutex.release()
        done.append(True)

    eng.spawn(ThreadSpec("sig", signaller))
    eng.run(until=msec(100))
    assert done == [True]


def test_condvar_morphing_under_held_mutex():
    """Signal while holding the mutex: the waiter is moved to the
    mutex queue, not woken early (wait morphing)."""
    eng = make_engine(ncpus=2)
    mutex = Mutex(eng)
    cond = CondVar(eng)
    events = []

    def waiter(ctx):
        yield mutex.acquire()
        yield cond.wait(mutex)
        events.append(("waiter-resumed", ctx.now))
        yield mutex.release()

    def signaller(ctx):
        yield Sleep(msec(5))
        yield mutex.acquire()
        yield cond.signal()
        # keep holding the mutex: the waiter must NOT resume yet
        yield Run(msec(20))
        events.append(("releasing", ctx.now))
        yield mutex.release()

    eng.spawn(ThreadSpec("waiter", waiter))
    eng.spawn(ThreadSpec("sig", signaller))
    eng.run(until=sec(1))
    assert events[0][0] == "releasing"
    assert events[1][0] == "waiter-resumed"
    assert events[1][1] >= events[0][1]


def test_barrier_single_party_never_blocks():
    eng = make_engine()
    barrier = Barrier(eng, parties=1)
    laps = []

    def solo(ctx):
        for i in range(3):
            yield from barrier.wait()
            laps.append(i)

    eng.spawn(ThreadSpec("solo", solo))
    eng.run(until=msec(100))
    assert laps == [0, 1, 2]


def test_cascading_barrier_duplicate_index_rejected():
    eng = make_engine(ncpus=2)
    cascade = CascadingBarrier(eng, parties=3)

    def worker(ctx):
        yield from cascade.wait(0)

    eng.spawn(ThreadSpec("a", worker))
    eng.spawn(ThreadSpec("b", worker))
    with pytest.raises(ValueError):
        eng.run(until=msec(100))


def test_channel_fifo_across_getters_and_queue():
    eng = make_engine()
    chan = Channel(eng)
    got = []

    def putter(ctx):
        for i in range(4):
            yield chan.put(i)

    def getter(ctx):
        for _ in range(4):
            item = yield chan.get()
            got.append(item)

    eng.spawn(ThreadSpec("put", putter))
    eng.spawn(ThreadSpec("get", getter))
    eng.run(until=msec(100))
    assert got == [0, 1, 2, 3]


def test_mutex_handoff_transfers_ownership_before_run():
    """Direct handoff: between release and the waiter running, the
    mutex is owned by the waiter (no barging window).  Two CPUs so the
    waiter actually queues on the mutex before the release."""
    eng = make_engine(ncpus=2)
    mutex = Mutex(eng)
    observed = []

    def holder(ctx):
        yield mutex.acquire()
        yield Run(msec(5))
        yield mutex.release()
        # immediately try to re-acquire: must queue behind the waiter
        yield mutex.acquire()
        observed.append("holder-reacquired")
        yield mutex.release()

    def waiter(ctx):
        yield Sleep(msec(1))
        yield mutex.acquire()
        observed.append("waiter-got-lock")
        yield mutex.release()

    eng.spawn(ThreadSpec("holder", holder))
    eng.spawn(ThreadSpec("waiter", waiter))
    eng.run(until=sec(1))
    assert observed == ["waiter-got-lock", "holder-reacquired"]
