"""Unit-level tests for the CFS balancing gates."""

import pytest

from repro.cfs.balance import can_migrate_task, load_balance
from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.topology import opteron_6172, smp
from repro.sched import scheduler_factory


def spin(ctx):
    yield run_forever()


def make_engine(ncpus=4, **kw):
    topo = opteron_6172() if ncpus == 32 else smp(ncpus)
    return Engine(topo, scheduler_factory("cfs", **kw), seed=51)


def pinned_spinners(eng, count, cpu):
    return [eng.spawn(ThreadSpec(f"p{cpu}-{i}", spin, app="app",
                                 affinity=frozenset({cpu})))
            for i in range(count)]


def test_can_migrate_rejects_running_and_affinity():
    eng = make_engine(ncpus=2)
    a = eng.spawn(ThreadSpec("a", spin, affinity=frozenset({0})))
    b = eng.spawn(ThreadSpec("b", spin, affinity=frozenset({0})))
    eng.run(until=msec(20))
    running = a if a.is_running else b
    queued = b if running is a else a
    sched = eng.scheduler
    assert not can_migrate_task(sched, running, 1, None)
    # queued thread is pinned to cpu 0: cannot go to 1
    assert not can_migrate_task(sched, queued, 1, None)
    eng.set_affinity(queued, None)
    # cache hot right after running? it never ran; allow
    assert can_migrate_task(sched, queued, 1, None)


def test_cache_hot_blocks_until_failures():
    eng = make_engine(ncpus=2)
    a = eng.spawn(ThreadSpec("a", spin))
    eng.run(until=msec(10))
    sched = eng.scheduler
    domain = sched.cpurq(eng.machine.cores[1]).domains[0]
    # simulate: thread ran very recently
    a.last_ran = eng.now
    a.state = a.state  # no-op; just clarity
    # while running it's excluded anyway; test the hot window on a
    # queued clone
    b = eng.spawn(ThreadSpec("b", spin, affinity=frozenset({0})))
    eng.run(until=msec(12))
    eng.set_affinity(b, None)
    queued = b if not b.is_running else a
    queued.last_ran = eng.now
    domain.nr_balance_failed = 0
    assert not can_migrate_task(sched, queued, 1, domain)
    domain.nr_balance_failed = 5
    assert can_migrate_task(sched, queued, 1, domain)


def test_imbalance_within_threshold_not_balanced():
    """5 vs 4 equal spinners inside an LLC (117% threshold ~ 1.17 <
    5/4=1.25... but moving would invert): the anti-ping-pong rule
    leaves it alone."""
    eng = make_engine(ncpus=2)
    pinned_spinners(eng, 3, 0)
    pinned_spinners(eng, 2, 1)
    eng.run(until=msec(50))
    for t in eng.threads:
        eng.set_affinity(t, None)
    eng.run(until=sec(2))
    counts = sorted(eng.nr_runnable_on(c) for c in range(2))
    assert counts == [2, 3]


def test_numa_threshold_gates_cross_node_moves():
    """Across NUMA nodes a 25% imbalance persists (the threshold)."""
    eng = make_engine(ncpus=32)
    # node 0 carries 5 spinners/core, the other three nodes 4/core:
    # node ratio 1.25 sits exactly at the tolerance
    for cpu in range(8):
        pinned_spinners(eng, 5, cpu)
    for cpu in range(8, 32):
        pinned_spinners(eng, 4, cpu)
    eng.run(until=msec(50))
    for t in eng.threads:
        eng.set_affinity(t, None)
    eng.run(until=sec(3))
    node0 = sum(eng.nr_runnable_on(c) for c in range(8))
    assert node0 == 40
    for node in range(1, 4):
        total = sum(eng.nr_runnable_on(c)
                    for c in range(8 * node, 8 * node + 8))
        assert total == 32


def test_big_numa_imbalance_is_balanced():
    eng = make_engine(ncpus=32)
    for cpu in range(8):
        pinned_spinners(eng, 8, cpu)  # node0: 64 threads
    eng.run(until=msec(50))
    for t in eng.threads:
        eng.set_affinity(t, None)
    eng.run(until=sec(5))
    node0 = sum(eng.nr_runnable_on(c) for c in range(8))
    # 64 threads over 4 nodes: node0 ends near 16-24 (within the
    # 25% tolerance of 16), far below 64
    assert node0 < 32


def test_newidle_pull_happens_immediately():
    """A core that *becomes* idle pulls work in its very next pick —
    long before the lazy idle-periodic balancing would."""
    eng = make_engine(ncpus=2)
    a = eng.spawn(ThreadSpec("a", lambda ctx: iter([Run(msec(10))]),
                             app="app", affinity=frozenset({1})))
    b = eng.spawn(ThreadSpec("b", spin, app="app",
                             affinity=frozenset({0})))
    c = eng.spawn(ThreadSpec("c", spin, app="app",
                             affinity=frozenset({0})))
    eng.run(until=msec(5))
    eng.set_affinity(b, None)
    eng.set_affinity(c, None)
    # 'a' exits at 10 ms; cpu1's pick runs newidle and steals b or c
    eng.run(until=msec(12))
    counts = [eng.nr_runnable_on(i) for i in range(2)]
    assert counts == [1, 1]
    assert eng.metrics.counter("cfs.newidle_calls") > 0
