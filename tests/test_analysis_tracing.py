"""Tests for the analysis and tracing packages."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (confidence_interval95, final_spread, geomean,
                            is_balanced, jain_index, max_min_ratio, mean,
                            percent_diff, render_bar_chart, render_table,
                            starvation_count, stdev, time_to_balance)
from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec
from repro.core.metrics import MetricRegistry, TimeSeries
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.tracing import (ascii_chart, downsample, heatmap,
                           sample_threads_per_core, series_to_csv)


# -------------------------------------------------------------- stats

def test_mean_stdev():
    assert mean([1, 2, 3]) == 2
    assert stdev([2, 2, 2]) == 0
    assert stdev([1, 3]) == pytest.approx(math.sqrt(2))


def test_geomean():
    assert geomean([1, 100]) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        geomean([0.0, 1.0])


def test_percent_diff():
    assert percent_diff(110, 100) == pytest.approx(10.0)
    assert percent_diff(60, 100) == pytest.approx(-40.0)
    with pytest.raises(ValueError):
        percent_diff(1, 0)


def test_confidence_interval():
    lo, hi = confidence_interval95([10.0] * 5)
    assert lo == hi == 10.0
    lo, hi = confidence_interval95([1, 2, 3, 4, 5])
    assert lo < 3 < hi


# ------------------------------------------------------------ fairness

def test_jain_perfect_fairness():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_total_unfairness():
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=30))
def test_property_jain_bounds(values):
    idx = jain_index(values)
    assert 1.0 / len(values) - 1e-9 <= idx <= 1.0 + 1e-9


def test_starvation_count():
    class T:
        def __init__(self, rt):
            self.total_runtime = rt
    threads = [T(0), T(0), T(100)]
    assert starvation_count(threads) == 2


def test_max_min_ratio():
    assert max_min_ratio([1, 2]) == 2
    assert max_min_ratio([0, 2]) == float("inf")
    assert max_min_ratio([0, 0]) == 1.0


# --------------------------------------------------------- convergence

def test_is_balanced():
    assert is_balanced([3, 3, 4], tolerance=1)
    assert not is_balanced([1, 5], tolerance=1)


def test_time_to_balance_from_series():
    metrics = MetricRegistry()
    # two cores: imbalanced until t=30, balanced after
    for t, (a, b) in [(10, (5, 1)), (20, (4, 2)), (30, (3, 3)),
                      (40, (3, 3))]:
        metrics.series("core0.nr_threads").record(t, a)
        metrics.series("core1.nr_threads").record(t, b)
    assert time_to_balance(metrics, 2, start_ns=0, tolerance=1) == 30
    assert final_spread(metrics, 2) == 0


def test_time_to_balance_never():
    metrics = MetricRegistry()
    metrics.series("core0.nr_threads").record(10, 9)
    metrics.series("core1.nr_threads").record(10, 1)
    assert time_to_balance(metrics, 2, start_ns=0) is None


# -------------------------------------------------------------- report

def test_render_table_alignment():
    text = render_table(["name", "value"],
                        [["fibo", 160.0], ["sysbench", 290.5]],
                        title="Table 2")
    assert "Table 2" in text
    assert "fibo" in text
    assert "290.50" in text


def test_render_bar_chart_signs():
    text = render_bar_chart(["up", "down"], [40.0, -36.0])
    lines = text.splitlines()
    assert "+40.0%" in lines[0]
    assert "-36.0%" in lines[1]


# ------------------------------------------------------------- tracing

def test_series_to_csv():
    s = TimeSeries("x")
    s.record(1, 2.0)
    s.record(3, 4.0)
    csv = series_to_csv([s])
    assert "series,time_ns,value" in csv
    assert "x,1,2.0" in csv


def test_ascii_chart_renders():
    s = TimeSeries("y")
    for i in range(50):
        s.record(i * 10**9, i * i)
    text = ascii_chart(s, title="squares")
    assert "squares" in text
    assert "*" in text


def test_downsample_caps_points():
    s = TimeSeries("z")
    for i in range(1000):
        s.record(i, i)
    points = downsample(s, max_points=100)
    assert len(points) <= 101
    assert points[0] == (0, 0)


def test_threads_per_core_sampler_and_heatmap():
    eng = Engine(smp(2), scheduler_factory("fifo"), seed=3)

    def spin(ctx):
        from repro.core.actions import run_forever
        yield run_forever()

    for i in range(4):
        eng.spawn(ThreadSpec(f"w{i}", spin))
    sample_threads_per_core(eng, msec(10))
    eng.run(until=msec(200))
    series = eng.metrics.series("core0.nr_threads")
    assert len(series) >= 15
    text = heatmap(eng.metrics, 2)
    assert "core  0" in text
    assert "time (s)" in text
