"""Tests for time units and conversions."""

from repro.core import clock


def test_unit_constants_consistent():
    assert clock.NSEC_PER_SEC == 1000 * clock.NSEC_PER_MSEC
    assert clock.NSEC_PER_MSEC == 1000 * clock.NSEC_PER_USEC


def test_conversions_roundtrip():
    assert clock.sec(1) == clock.NSEC_PER_SEC
    assert clock.msec(1.5) == 1_500_000
    assert clock.usec(2) == 2_000
    assert clock.to_sec(clock.sec(3)) == 3.0
    assert clock.to_msec(clock.msec(7)) == 7.0


def test_linux_tick_is_one_ms():
    assert clock.LINUX_TICK_NSEC == clock.msec(1)


def test_freebsd_tick_matches_stathz():
    # 127 Hz -> ~7.874 ms; 10 ticks is the paper's "78 ms" timeslice.
    assert 7_800_000 < clock.FREEBSD_TICK_NSEC < 7_900_000
    assert abs(10 * clock.FREEBSD_TICK_NSEC - clock.msec(78)) < clock.msec(1)


def test_format_ns_picks_unit():
    assert clock.format_ns(5) == "5ns"
    assert clock.format_ns(1_500) == "1.500us"
    assert clock.format_ns(1_500_000) == "1.500ms"
    assert clock.format_ns(2_500_000_000) == "2.500s"
