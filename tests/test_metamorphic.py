"""Metamorphic transforms: each documented equivalence/dominance
relation holds on fuzz scenarios under every shipped scheduler.

The relations themselves are documented in
:mod:`repro.testing.metamorphic`; these tests sample them over fuzz
seeds (exact digest equality for tickless, exact scaling for time,
exact busy-vector permutation for pinned renumbering, one-timeslice
tolerance for nice permutation).
"""

import random
from dataclasses import replace

import pytest

from repro.testing import (check_core_renumbering, check_nice_permutation,
                           check_tickless_equivalence, check_time_scaling,
                           contention_scenario, generate_scenario,
                           llc_preserving_permutations,
                           transform_permute_nice, transform_renumber_cores,
                           transform_scale_time)
from tests.conftest import SCHEDULERS, ZOO

SEEDS = (0, 1, 2)

#: bounded zoo budget: 5 extra schedulers × 2 seeds per relation
ZOO_SEEDS = (0, 1)


# ----------------------------------------------------------------------
# transform plumbing
# ----------------------------------------------------------------------

def test_scale_transform_scales_everything():
    scenario = generate_scenario(5)
    scaled = transform_scale_time(scenario, 4)
    for base, big in zip(scenario.threads, scaled.threads):
        assert big.spawn_at_ms == 4 * base.spawn_at_ms
        assert big.requested_run_ns() == 4 * base.requested_run_ns()
        assert big.requested_sleep_ns() == 4 * base.requested_sleep_ns()
    assert scaled.until_ms == 4 * scenario.until_ms


def test_renumber_requires_a_permutation():
    scenario = generate_scenario(0)
    bad = tuple(range(scenario.ncpus - 1)) + (0,)
    with pytest.raises(ValueError):
        transform_renumber_cores(scenario, bad)


def test_nice_permutation_preserves_nice_multiset():
    scenario = contention_scenario(3, (-10, 0, 5, 19))
    permuted = transform_permute_nice(scenario)
    assert sorted(t.nice for t in permuted.threads) == \
        sorted(t.nice for t in scenario.threads)
    assert permuted != scenario  # four interchangeable threads rotate


# ----------------------------------------------------------------------
# relations
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", SCHEDULERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_tickless_on_off_digest_equal(sched, seed):
    check_tickless_equivalence(generate_scenario(seed), sched)


@pytest.mark.parametrize("sched", SCHEDULERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_time_scaling_exact(sched, seed):
    check_time_scaling(generate_scenario(seed), sched, k=3)


# ----------------------------------------------------------------------
# the scheduler zoo, same relations, bounded seed budget
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", ZOO)
@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_zoo_tickless_on_off_digest_equal(sched, seed):
    """NO_HZ invisibility holds for every policy-DSL scheduler — the
    lottery policy included: RNG draws happen only inside contested
    picks, which parked ticks never add or remove."""
    check_tickless_equivalence(generate_scenario(seed, smoke=True),
                               sched)


@pytest.mark.parametrize("sched", ZOO)
@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_zoo_time_scaling_exact(sched, seed):
    check_time_scaling(generate_scenario(seed, smoke=True), sched, k=3)


@pytest.mark.parametrize("sched", ZOO)
def test_zoo_core_renumbering_outcomes(sched):
    for seed in range(8):
        scenario = generate_scenario(seed, smoke=True)
        if scenario.ncpus < 2:
            continue
        perms = llc_preserving_permutations(scenario)
        if perms:
            check_core_renumbering(scenario, sched, perms[0])
            return
    pytest.skip("no multi-core scenario in the sampled seeds")


def _pinned_variant(seed: int):
    """A fuzz scenario with every thread pinned to one CPU (the exact
    busy-vector-permutation relation needs zero placement freedom)."""
    scenario = generate_scenario(seed)
    if scenario.ncpus < 2:
        return None
    rng = random.Random(f"pin:{seed}")
    threads = tuple(
        replace(t, affinity=(rng.randrange(scenario.ncpus),))
        for t in scenario.threads)
    return replace(scenario, threads=threads)


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_core_renumbering_on_pinned_scenarios(sched):
    checked = 0
    for seed in range(8):
        scenario = _pinned_variant(seed)
        if scenario is None:
            continue
        for perm in llc_preserving_permutations(scenario):
            check_core_renumbering(scenario, sched, perm)
            checked += 1
        if checked >= 3:
            break
    assert checked >= 2, "too few renumbering cases exercised"


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_core_renumbering_unpinned_outcomes(sched):
    """The weaker relation for free placement: per-thread outcomes
    unchanged under an LLC-preserving renumbering."""
    for seed in range(8):
        scenario = generate_scenario(seed)
        if scenario.ncpus < 2:
            continue
        perms = llc_preserving_permutations(scenario)
        if perms:
            check_core_renumbering(scenario, sched, perms[0])
            return
    pytest.skip("no multi-core scenario in the sampled seeds")


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_nice_permutation_under_contention(sched):
    check_nice_permutation(contention_scenario(1, (-10, 0, 0, 5, 19)),
                           sched)
