"""Tests for the random-stream infrastructure and metric registry
corners not covered elsewhere."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import LatencyRecorder, MetricRegistry
from repro.core.rng import RandomSource, RandomStream


# ------------------------------------------------------------------ rng

def test_streams_are_deterministic_per_name():
    a = RandomSource(42).stream("x")
    b = RandomSource(42).stream("x")
    assert [a.randint(0, 100) for _ in range(10)] == \
        [b.randint(0, 100) for _ in range(10)]


def test_streams_are_independent_across_names():
    src = RandomSource(42)
    x = [src.stream("x").randint(0, 10**9) for _ in range(5)]
    y = [src.stream("y").randint(0, 10**9) for _ in range(5)]
    assert x != y


def test_adding_a_stream_does_not_disturb_others():
    """The reproducibility property: a new consumer never changes the
    draws existing consumers see."""
    src1 = RandomSource(7)
    first = src1.stream("balance").randint(0, 10**9)

    src2 = RandomSource(7)
    src2.stream("newcomer").randint(0, 10**9)  # interleaved consumer
    second = src2.stream("balance").randint(0, 10**9)
    assert first == second


def test_stream_is_cached():
    src = RandomSource(1)
    assert src.stream("a") is src.stream("a")


def test_jitter_ns_bounds():
    stream = RandomSource(3).stream("j")
    for _ in range(100):
        v = stream.jitter_ns(1000, 0.25)
        assert 750 <= v <= 1250
    assert stream.jitter_ns(1000, 0.0) == 1000
    assert stream.jitter_ns(0, 0.5) >= 1  # never below 1 ns


def test_uniform_and_choice():
    stream = RandomSource(4).stream("u")
    for _ in range(50):
        assert 1.0 <= stream.uniform(1.0, 2.0) < 2.0
    assert stream.choice([5]) == 5


# -------------------------------------------------------------- metrics

def test_percentiles_interpolate():
    rec = LatencyRecorder("x")
    for v in (10, 20, 30, 40):
        rec.record(v)
    assert rec.p50 == pytest.approx(25.0)
    assert rec.percentile(0) == 10
    assert rec.percentile(100) == 40
    with pytest.raises(ValueError):
        rec.percentile(101)


def test_empty_recorder_is_safe():
    rec = LatencyRecorder("x")
    assert rec.mean == 0.0
    assert rec.p99 == 0.0
    assert rec.max == 0
    assert rec.count == 0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 10**9), min_size=1, max_size=50))
def test_property_percentiles_monotone_and_bounded(samples):
    rec = LatencyRecorder("x")
    for s in samples:
        rec.record(s)
    assert min(samples) <= rec.p50 <= rec.p95 <= rec.p99 <= rec.max
    assert rec.max == max(samples)


def test_series_value_at_step_semantics():
    reg = MetricRegistry()
    s = reg.series("s")
    s.record(10, 1.0)
    s.record(20, 2.0)
    assert s.value_at(5) is None
    assert s.value_at(10) == 1.0
    assert s.value_at(15) == 1.0
    assert s.value_at(25) == 2.0


def test_counter_default_zero_and_accumulation():
    reg = MetricRegistry()
    assert reg.counter("nope") == 0.0
    reg.incr("x")
    reg.incr("x", 2.5)
    assert reg.counter("x") == 3.5
