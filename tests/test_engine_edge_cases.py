"""Engine edge cases: zero durations, exits, overlapping events,
metrics, and error paths."""

import pytest

from repro.core import (Engine, Exit, Run, Sleep, ThreadSpec, Yield,
                        run_forever)
from repro.core.actions import Fork
from repro.core.clock import msec, sec, usec
from repro.core.errors import SimulationError, ThreadStateError
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory


def make_engine(ncpus=1, **kw):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory("fifo"), seed=41, **kw)


def test_zero_duration_run_and_sleep_are_instant():
    eng = make_engine()
    marks = []

    def behavior(ctx):
        yield Run(0)
        marks.append(ctx.now)
        yield Sleep(0)
        marks.append(ctx.now)
        yield Run(msec(1))

    t = eng.spawn(ThreadSpec("z", behavior))
    eng.run(until=sec(1))
    assert marks == [0, 0]
    assert t.total_runtime == msec(1)
    assert t.total_sleeptime == 0


def test_negative_durations_rejected():
    with pytest.raises(ValueError):
        Run(-1)
    with pytest.raises(ValueError):
        Sleep(-5)


def test_explicit_exit_action():
    eng = make_engine()

    def behavior(ctx):
        yield Run(msec(1))
        yield Exit()
        yield Run(sec(100))  # unreachable

    t = eng.spawn(ThreadSpec("e", behavior))
    eng.run(until=sec(1))
    assert t.has_exited
    assert t.total_runtime == msec(1)


def test_nested_forks():
    eng = make_engine(ncpus=2)
    generations = []

    def child_of(depth):
        def behavior(ctx):
            generations.append(depth)
            yield Run(usec(100))
            if depth < 3:
                yield Fork(ThreadSpec(f"g{depth + 1}",
                                      child_of(depth + 1)))
        return behavior

    eng.spawn(ThreadSpec("g0", child_of(0)))
    eng.run(until=sec(1))
    assert sorted(generations) == [0, 1, 2, 3]
    # app label propagates down the fork chain
    assert all(t.app == "g0" for t in eng.threads)


def test_yield_alone_keeps_running():
    eng = make_engine()

    def polite_solo(ctx):
        for _ in range(3):
            yield Run(msec(1))
            yield Yield()

    t = eng.spawn(ThreadSpec("p", polite_solo))
    eng.run(until=sec(1))
    assert t.has_exited
    assert t.total_runtime == msec(3)


def test_many_simultaneous_wakeups_same_instant():
    """A broadcast wake of many threads at one instant is handled
    without loss."""
    from repro.sync import OneShotEvent
    eng = make_engine(ncpus=4)
    event = OneShotEvent(eng)
    done = []

    def waiter(ctx):
        yield event.wait()
        yield Run(msec(1))
        done.append(ctx.thread.name)

    for i in range(40):
        eng.spawn(ThreadSpec(f"w{i}", waiter))

    def firer(ctx):
        yield Sleep(msec(5))
        yield event.fire()

    eng.spawn(ThreadSpec("firer", firer))
    eng.run(until=sec(5))
    assert len(done) == 40


def test_spawn_in_the_past_activates_now():
    eng = make_engine()
    eng.spawn(ThreadSpec("a", lambda ctx: iter([Run(msec(10))])))
    eng.run(until=msec(5))
    t = eng.spawn(ThreadSpec("late", lambda ctx: iter([Run(msec(1))])),
                  at=msec(1))  # in the past
    eng.run(until=sec(1))
    assert t.has_exited
    assert t.created_at >= msec(5)


def test_double_activation_rejected():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("a", lambda ctx: iter([Run(msec(1))])))
    with pytest.raises(ThreadStateError):
        eng._activate_new(t)


def test_run_deadline_flushes_accounting():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("spin",
                             lambda ctx: iter([run_forever()])))
    eng.run(until=msec(7))
    # accounting is exact at the deadline, not at the last event
    assert t.total_runtime == msec(7)
    core = eng.machine.cores[0]
    core.account_to_now()
    assert core.busy_ns == msec(7)


def test_unknown_action_raises():
    eng = make_engine()

    def bad(ctx):
        yield "not-an-action"

    eng.spawn(ThreadSpec("bad", bad))
    with pytest.raises(SimulationError):
        eng.run(until=sec(1))


def test_wake_value_delivered_once():
    from repro.sync import Channel
    eng = make_engine(ncpus=2)
    chan = Channel(eng)
    got = []

    def consumer(ctx):
        a = yield chan.get()
        b = yield chan.get()
        got.append((a, b))

    def producer(ctx):
        yield Sleep(msec(1))
        yield chan.put("first")
        yield Sleep(msec(1))
        yield chan.put("second")

    eng.spawn(ThreadSpec("c", consumer))
    eng.spawn(ThreadSpec("p", producer))
    eng.run(until=sec(1))
    assert got == [("first", "second")]


def test_charge_overhead_on_idle_core_is_recorded_only():
    eng = make_engine(ncpus=2)
    eng.spawn(ThreadSpec("a", lambda ctx: iter([Run(msec(5))])))
    eng.events.post(msec(1), eng.charge_overhead, 1, usec(500))
    eng.run(until=sec(1))
    assert eng.machine.cores[1].sched_overhead_ns == usec(500)
    assert eng.metrics.counter("sched.overhead_ns") == usec(500)


def test_nice_out_of_range_rejected_in_spec():
    with pytest.raises(ValueError):
        ThreadSpec("x", lambda ctx: iter([]), nice=25)


def test_threads_named_and_of_app_queries():
    eng = make_engine(ncpus=2)
    eng.spawn(ThreadSpec("web/1", lambda ctx: iter([Run(msec(1))]),
                         app="web"))
    eng.spawn(ThreadSpec("web/2", lambda ctx: iter([Run(msec(1))]),
                         app="web"))
    eng.spawn(ThreadSpec("db/1", lambda ctx: iter([Run(msec(1))]),
                         app="db"))
    assert len(eng.threads_named("web/")) == 2
    assert len(eng.threads_of_app("db")) == 1
