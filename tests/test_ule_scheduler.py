"""Integration tests for the ULE scheduler running in the engine.

These verify the paper's §2.2/§5 behaviours: absolute priority of
interactive threads (batch starvation), fork inheritance of
interactivity, slice scaling, count-based balancing (one thread per
invocation), and idle stealing.
"""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.topology import opteron_6172, single_core, smp
from repro.sched import scheduler_factory


def make_engine(ncpus=1, seed=1, **sched_kw):
    if ncpus == 1:
        topo = single_core()
    elif ncpus == 32:
        topo = opteron_6172()
    else:
        topo = smp(ncpus)
    return Engine(topo, scheduler_factory("ule", **sched_kw), seed=seed)


def spin(ctx):
    yield run_forever()


def compute(duration):
    def behavior(ctx):
        yield Run(duration)
    return behavior


def interactive_loop(run_ns, sleep_ns, cycles=10**9):
    """A thread that mostly sleeps: stays interactive under ULE."""
    def behavior(ctx):
        for _ in range(cycles):
            yield Run(run_ns)
            yield Sleep(sleep_ns)
    return behavior


def test_single_thread_runs():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("solo", compute(msec(50))))
    assert eng.run(until=sec(2)) == "all-exited"
    assert t.total_runtime == msec(50)


def test_batch_threads_round_robin():
    """Identical CPU hogs share the core (batch fairness)."""
    eng = make_engine()
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, app="app"))
          for i in range(4)]
    eng.run(until=sec(4))
    for t in ts:
        assert t.total_runtime == pytest.approx(sec(1), rel=0.25)


def test_interactive_classification_over_time():
    """A pure spinner becomes batch; a mostly-sleeping thread stays
    interactive (Fig. 2)."""
    eng = make_engine(ncpus=2)
    hog = eng.spawn(ThreadSpec("hog", spin, affinity=frozenset({0})))
    ia = eng.spawn(ThreadSpec("ia", interactive_loop(msec(1), msec(5)),
                              affinity=frozenset({1})))
    eng.run(until=sec(10))
    assert not hog.policy.interactive
    assert hog.policy.hist.penalty() > 90
    assert ia.policy.interactive
    assert ia.policy.hist.penalty() <= 30


def test_interactive_starves_batch():
    """Enough interactive threads saturating a core starve a batch
    thread completely and unboundedly (§5.1)."""
    eng = make_engine()
    hog = eng.spawn(ThreadSpec("fibo", spin, app="fibo"))
    # let the hog become batch first
    eng.run(until=sec(6))
    hog_runtime_before = hog.total_runtime
    # 20 interactive threads, each wanting 1ms every 4ms -> demand 5x
    # core capacity; each still sleeps >60% of its *own* time.
    for i in range(20):
        eng.spawn(ThreadSpec(f"ia{i}", interactive_loop(msec(1), msec(12)),
                             app="svc"))
    eng.run(until=sec(16))
    starved = hog.total_runtime - hog_runtime_before
    # the batch hog got (almost) nothing for 10 s
    assert starved < msec(500)


def test_cfs_does_not_starve_same_workload():
    """Contrast: the same workload under CFS shares the core."""
    eng = Engine(single_core(), scheduler_factory("cfs"), seed=1)
    hog = eng.spawn(ThreadSpec("fibo", spin, app="fibo"))
    eng.run(until=sec(6))
    before = hog.total_runtime
    for i in range(20):
        eng.spawn(ThreadSpec(f"ia{i}", interactive_loop(msec(1), msec(12)),
                             app="svc"))
    eng.run(until=sec(16))
    assert hog.total_runtime - before > sec(2)


def test_fork_inherits_interactivity():
    """Children inherit the parent's sleep/run history (§5.2)."""
    eng = make_engine(ncpus=2)
    children = []

    def busy_parent(ctx):
        from repro.core.actions import Fork
        # burn CPU to build up a batch history
        yield Run(sec(8))
        child = yield Fork(ThreadSpec("child-of-busy", spin))
        children.append(child)
        yield Run(msec(10))

    eng.spawn(ThreadSpec("parent", busy_parent))
    eng.run(until=sec(9))
    assert len(children) == 1
    # forked child starts batch because the parent was batch
    assert not children[0].policy.interactive


def test_exit_returns_runtime_to_parent():
    eng = make_engine(ncpus=2)

    def parent(ctx):
        from repro.core.actions import Fork
        yield Fork(ThreadSpec("kid", compute(sec(2))))
        for _ in range(100):
            yield Sleep(msec(50))

    p = eng.spawn(ThreadSpec("parent", parent))
    eng.run(until=sec(3))
    # the kid's 2s of runtime was absorbed into the sleeping parent
    assert p.policy.hist.runtime >= sec(1)


def test_no_wakeup_preemption():
    """A woken interactive thread does NOT preempt the running batch
    thread; it waits for the slice to expire (§5.3 apache, §6.4)."""
    eng = make_engine()
    hog = eng.spawn(ThreadSpec("hog", spin, app="hog"))
    eng.run(until=sec(6))  # hog becomes batch

    def sleeper(ctx):
        for _ in range(50):
            yield Sleep(msec(20) + usec(137))
            yield Run(usec(200))

    t = eng.spawn(ThreadSpec("ia", sleeper, app="ia"))
    eng.run(until=msec(7500))
    baseline = t.total_waittime
    waits_before = t.nr_switches
    eng.run(until=sec(9))
    waited = t.total_waittime - baseline
    cycles = t.nr_switches - waits_before
    if cycles:
        # each wake waits some fraction of the hog's remaining slice
        # (ULE slice under load ~7.9-39ms) instead of running at once
        assert waited / cycles > usec(500)


def test_slice_scales_with_load():
    """With 2 runnable threads the effective slice is 5 ticks: the
    running thread is switched out within ~40 ms, so both threads
    alternate at that granularity."""
    eng = make_engine()
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin)) for i in range(2)]
    eng.run(until=msec(500))
    # both ran, and each got switched in multiple times (RR at ~39 ms)
    assert all(t.total_runtime > msec(100) for t in ts)
    assert all(t.nr_switches >= 4 for t in ts)


def test_idle_steal_takes_one_thread():
    eng = make_engine(ncpus=4, balance_enabled=False)
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, affinity=frozenset({0})))
          for i in range(8)]
    eng.run(until=msec(20))
    for t in ts:
        eng.set_affinity(t, None)
    eng.run(until=msec(200))
    # each idle core stole exactly one thread ("the idle stealing
    # mechanism steals at most one thread")
    counts = [eng.nr_runnable_on(c) for c in range(4)]
    assert counts == [5, 1, 1, 1]
    assert eng.metrics.counter("ule.idle_steals") == 3


def test_periodic_balance_moves_one_per_invocation():
    eng = make_engine(ncpus=4)
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, affinity=frozenset({0})))
          for i in range(12)]
    eng.run(until=msec(20))
    for t in ts:
        eng.set_affinity(t, None)
    # after idle steal: [9, 1, 1, 1]; periodic balancing then moves one
    # thread at a time from core 0 every 0.5-1.5 s.
    eng.run(until=sec(3))
    moved = eng.metrics.counter("ule.balance_migrations")
    invocations = eng.metrics.counter("ule.balance_invocations")
    assert invocations >= 2
    assert moved <= invocations  # at most one migration per invocation
    counts = sorted(eng.nr_runnable_on(c) for c in range(4))
    assert counts[-1] < 9  # progress was made
    # eventually balances to [3, 3, 3, 3]
    eng.run(until=sec(20))
    counts = [eng.nr_runnable_on(c) for c in range(4)]
    assert counts == [3, 3, 3, 3]


def test_pickcpu_places_forks_on_least_loaded():
    """ULE always forks threads on the core with the lowest number of
    threads (the c-ray/Fig. 7 behaviour)."""
    eng = make_engine(ncpus=4)
    done = []

    def master(ctx):
        from repro.core.actions import Fork
        for i in range(8):
            yield Fork(ThreadSpec(f"child{i}", spin, app="app"))
            yield Run(usec(100))
        done.append(True)
        yield run_forever()

    eng.spawn(ThreadSpec("master", master, app="app"))
    eng.run(until=msec(500))
    counts = [eng.nr_runnable_on(c) for c in range(4)]
    # 8 children + 1 master = 9 threads on 4 cores: perfectly even
    assert done and sorted(counts) == [2, 2, 2, 3]


def test_pickcpu_scan_cost_charged():
    eng = make_engine(ncpus=4, pickcpu_scan_cost_ns=usec(5))

    def sleeper(ctx):
        for _ in range(100):
            yield Run(msec(1))
            yield Sleep(msec(3))

    for i in range(4):
        eng.spawn(ThreadSpec(f"s{i}", sleeper))
    eng.run(until=sec(2))
    assert eng.metrics.counter("ule.pickcpu_scans") > 0
    assert eng.metrics.counter("sched.overhead_ns") > 0


def test_pickcpu_simple_mode_no_scans():
    eng = make_engine(ncpus=4, pickcpu_scan_cost_ns=usec(5),
                      pickcpu_simple=True)

    def sleeper(ctx):
        for _ in range(50):
            yield Run(msec(1))
            yield Sleep(msec(3))

    for i in range(4):
        eng.spawn(ThreadSpec(f"s{i}", sleeper))
    eng.run(until=sec(2))
    assert eng.metrics.counter("ule.pickcpu_scans") == 0


def test_ule_runs_threads_to_completion_multicore():
    eng = make_engine(ncpus=8)
    ts = [eng.spawn(ThreadSpec(f"w{i}", compute(msec(100))))
          for i in range(24)]
    reason = eng.run(until=sec(10))
    assert reason == "all-exited"
    assert all(t.total_runtime == msec(100) for t in ts)
