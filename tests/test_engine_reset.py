"""``Engine.reset()`` warm-reuse contract: digest-identical to fresh.

Campaign workers recycle one engine per (topology, scheduler)
signature across cells (:func:`repro.experiments.base.make_engine`
under ``REPRO_WARM_ENGINES``), so ``reset()`` must restore *every*
piece of run state a cell can dirty — clock, queues and their
sequence counters, RNG, metrics, tracer, cores, threads, scheduler
runqueues, fault injector.  The oracle is the schedule digest: a
reset engine re-running any cell must produce the byte-identical
digest a freshly constructed engine produces.

Covered here:

* randomized cell sequences (spinner / channel / sleeper mixes over
  both stock schedulers and varying seeds) run fresh-per-cell vs one
  engine reset between cells;
* reset after a *faulted* cell (hotplug offline/online, thread
  stall): the next clean cell must not see leftover offline cores or
  injector state;
* the warm pool itself: ``make_engine`` reuses one object per
  signature when enabled, never reuses across signatures, and stays
  off by default.
"""

import random

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec
from repro.core.topology import smp
from repro.faults.plan import CoreOffline, CoreOnline, FaultPlan, \
    ThreadStall
from repro.sched import scheduler_factory
from repro.sync import Channel
from repro.tracing.digest import schedule_digest

NCPUS = 2
UNTIL = msec(30)


def _spinner_cell(engine, rng):
    def spin(ctx):
        yield run_forever()
    for i in range(rng.randint(1, 4)):
        engine.spawn(ThreadSpec(f"spin{i}", spin,
                                nice=rng.choice((-5, 0, 0, 5))))


def _channel_cell(engine, rng):
    chan = Channel(engine)

    def producer(ctx):
        for i in range(20):
            yield Run(msec(1))
            yield chan.put(i)

    def consumer(ctx):
        while True:
            yield chan.get()
            yield Run(msec(1))

    engine.spawn(ThreadSpec("prod", producer))
    for i in range(rng.randint(1, 3)):
        engine.spawn(ThreadSpec(f"cons{i}", consumer))


def _sleeper_cell(engine, rng):
    def sleeper(ctx):
        for _ in range(10):
            yield Run(msec(rng.randint(1, 3)))
            yield Sleep(msec(rng.randint(1, 3)))
    for i in range(rng.randint(1, 3)):
        engine.spawn(ThreadSpec(f"slp{i}", sleeper))


CELL_KINDS = (_spinner_cell, _channel_cell, _sleeper_cell)


def _cell_sequence(seq_seed: int, n: int = 6):
    """A deterministic mixed sequence of (sched, kind, seed) cells."""
    rng = random.Random(f"engine-reset:{seq_seed}")
    return [(rng.choice(("cfs", "ule")), rng.randrange(len(CELL_KINDS)),
             rng.randint(0, 999)) for _ in range(n)]


def _run_cell(engine, kind_index: int, cell_seed: int) -> str:
    # the populate rng is separate from the engine's RandomSource and
    # deterministic per cell, so both legs build identical workloads
    CELL_KINDS[kind_index](engine, random.Random(cell_seed))
    engine.run(until=UNTIL)
    return schedule_digest(engine)


@pytest.mark.parametrize("seq_seed", (0, 1, 2))
def test_reset_reuse_matches_fresh_over_random_cells(seq_seed):
    cells = _cell_sequence(seq_seed)
    fresh = [
        _run_cell(Engine(smp(NCPUS), scheduler_factory(sched),
                         seed=cell_seed), kind, cell_seed)
        for sched, kind, cell_seed in cells]
    warm_engines = {}
    warm = []
    for sched, kind, cell_seed in cells:
        engine = warm_engines.get(sched)
        if engine is None:
            engine = Engine(smp(NCPUS), scheduler_factory(sched),
                            seed=cell_seed)
            warm_engines[sched] = engine
        else:
            engine.reset(seed=cell_seed)
        warm.append(_run_cell(engine, kind, cell_seed))
    assert warm == fresh


@pytest.mark.parametrize("sched", ("cfs", "ule"))
def test_reset_after_hotplug_and_stall_cell(sched):
    """A clean cell after a faulted one must match a fresh engine —
    leftover offline cores or injector state would skew placement."""
    plan = FaultPlan(faults=(
        CoreOffline(at_ns=msec(5), cpu=1),
        CoreOnline(at_ns=msec(15), cpu=1),
        ThreadStall(at_ns=msec(8), thread="spin0",
                    duration_ns=msec(4)),
    ))
    engine = Engine(smp(NCPUS), scheduler_factory(sched), seed=3,
                    faults=plan)
    faulted = _run_cell(engine, 0, 3)
    # same faulted cell, fresh engine: reset(faults=...) rebuilds the
    # injector exactly
    engine.reset(seed=3, faults=plan)
    assert _run_cell(engine, 0, 3) == faulted
    # clean cell after the faulted one vs a fresh engine
    engine.reset(seed=4)
    warm = _run_cell(engine, 1, 4)
    fresh = _run_cell(Engine(smp(NCPUS), scheduler_factory(sched),
                             seed=4), 1, 4)
    assert warm == fresh
    # and the machine really is whole again
    assert engine.machine.nr_offline == 0
    assert all(core.online for core in engine.machine.cores)


def test_make_engine_warm_pool(monkeypatch):
    from repro.experiments import base

    monkeypatch.setattr(base, "_WARM_POOL", {})
    monkeypatch.setenv("REPRO_WARM_ENGINES", "1")
    first = base.make_engine("cfs", ncpus=2, seed=1)
    digest_fresh = _run_cell(first, 1, 1)
    again = base.make_engine("cfs", ncpus=2, seed=1)
    assert again is first  # recycled, not rebuilt
    assert _run_cell(again, 1, 1) == digest_fresh
    # a different construction signature never shares an engine
    other = base.make_engine("ule", ncpus=2, seed=1)
    assert other is not first


def test_make_engine_warm_pool_off_by_default(monkeypatch):
    from repro.experiments import base

    monkeypatch.setattr(base, "_WARM_POOL", {})
    monkeypatch.delenv("REPRO_WARM_ENGINES", raising=False)
    a = base.make_engine("cfs", ncpus=2, seed=1)
    b = base.make_engine("cfs", ncpus=2, seed=1)
    assert a is not b
    assert not base._WARM_POOL
