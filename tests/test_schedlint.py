"""schedlint: the determinism/contract static-analysis pass.

Per-rule fixture snippets (positive, suppressed, allowlisted), the
suppression/allowlist machinery, the SchedClass contract checker
against a deliberately incomplete subclass, the FreeBSD API mapping
checker, the CLI exit codes, and the cleanliness of the shipped tree.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.lint import (RULES, check_freebsd_api,
                                 check_sched_class, lint_paths,
                                 lint_source, main)
from repro.analysis.lint.contract import registered_sched_classes
from repro.sched.base import SchedClass

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lint(snippet, path="repro/somewhere/code.py", **kwargs):
    return lint_source(textwrap.dedent(snippet), path=path, **kwargs)


#: path a fixture must pretend to live at for its rule to apply
#: (missing-slots only fires on hot-path directories)
FIXTURE_PATH = {"missing-slots": "repro/core/code.py"}

#: a second path where the rule still applies (for allowlist tests)
FIXTURE_OTHER_PATH = {"missing-slots": "repro/cfs/code.py"}


def fixture_path(rule):
    return FIXTURE_PATH.get(rule, "repro/somewhere/code.py")


def fixture_other_path(rule):
    return FIXTURE_OTHER_PATH.get(rule, "repro/elsewhere/code.py")


# ----------------------------------------------------------------------
# rule fixtures: positive / suppressed / allowlisted
# ----------------------------------------------------------------------

#: per-rule (violating snippet, allowlist path that excuses it)
FIXTURES = {
    "wall-clock": """
        import time
        def f():
            return time.time()
        """,
    "unseeded-random": """
        import random
        def f():
            return random.randint(0, 10)
        """,
    "id-ordering": """
        def f(threads):
            return sorted(threads, key=id)
        """,
    "set-iteration": """
        def f():
            for x in {1, 2, 3}:
                print(x)
        """,
    "float-ns-clock": """
        def f(delta_ns):
            return delta_ns / 1000
        """,
    "missing-slots": """
        class HotThing:
            def __init__(self):
                self.x = 1
        """,
    "hot-loop-attr": """
        def run(self, until):
            while True:
                self.profiler.tick()
        """,
}


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_positive(rule):
    findings = lint(FIXTURES[rule], path=fixture_path(rule))
    assert rules_of(findings) == [rule]
    finding = findings[0]
    assert finding.line > 0
    assert rule in finding.format()


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_suppressed_inline(rule):
    snippet = textwrap.dedent(FIXTURES[rule])
    path = fixture_path(rule)
    lines = snippet.splitlines()
    # find the violating line from an unsuppressed run, mark it
    target = lint_source(snippet, path=path)[0].line
    lines[target - 1] += f"  # schedlint: ignore[{rule}] -- test"
    assert lint_source("\n".join(lines), path=path) == []


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_allowlisted(rule):
    snippet = textwrap.dedent(FIXTURES[rule])
    path = fixture_path(rule)
    allow = {rule: (path,)}
    assert lint_source(snippet, path=path, allowlist=allow) == []
    # a different file is still flagged
    assert lint_source(snippet, path=fixture_other_path(rule),
                       allowlist=allow) != []


def test_every_rule_has_a_fixture():
    assert sorted(FIXTURES) == sorted(RULES)


# ----------------------------------------------------------------------
# individual rule details
# ----------------------------------------------------------------------

def test_wall_clock_variants_flagged():
    findings = lint("""
        import time
        from datetime import datetime
        def f():
            a = time.monotonic()
            b = time.perf_counter_ns()
            c = datetime.now()
            return a, b, c
        """)
    assert rules_of(findings) == ["wall-clock"]
    assert len(findings) == 3


def test_wall_clock_local_attribute_not_flagged():
    # attribute access on local objects must not resolve via the
    # import table ("self.time" is not the time module)
    assert lint("""
        def f(self):
            return self.time()
        """) == []


def test_engine_now_not_flagged():
    assert lint("""
        def f(engine):
            return engine.now
        """) == []


def test_random_random_instance_allowed():
    findings = lint("""
        import random
        def f(seed):
            rng = random.Random(seed)
            return rng.random() + random.random()
        """)
    # the module-level call is flagged, the seeded instance is not
    assert len(findings) == 1
    assert findings[0].rule == "unseeded-random"


def test_id_ordering_lambda_key_and_set_comp():
    findings = lint("""
        def f(threads):
            seen = {id(t) for t in threads}
            worst = max(threads, key=lambda t: id(t))
            return seen, worst
        """)
    assert rules_of(findings) == ["id-ordering"]
    assert len(findings) == 2


def test_stable_key_not_flagged():
    assert lint("""
        def f(threads):
            seen = {t.tid for t in threads}
            return sorted(threads, key=lambda t: t.tid)
        """) == []


def test_set_iteration_call_and_comprehension():
    findings = lint("""
        def f(xs):
            out = [x for x in set(xs)]
            for y in {x + 1 for x in xs}:
                out.append(y)
            return out
        """)
    assert rules_of(findings) == ["set-iteration"]
    assert len(findings) == 2


def test_sorted_set_not_flagged():
    assert lint("""
        def f(xs):
            for x in sorted(set(xs)):
                print(x)
        """) == []


def test_float_ns_floor_division_not_flagged():
    assert lint("""
        def f(delta_ns):
            return delta_ns // 1000
        """) == []


def test_float_cast_of_clock_flagged():
    findings = lint("""
        def f(now):
            return float(now)
        """)
    assert rules_of(findings) == ["float-ns-clock"]


def test_missing_slots_only_fires_on_hot_paths():
    snippet = """
        class Thing:
            def __init__(self):
                self.x = 1
        """
    assert lint(snippet, path="repro/workloads/code.py") == []
    assert rules_of(lint(snippet, path="repro/ule/code.py")) == \
        ["missing-slots"]


def test_missing_slots_satisfied_by_slots():
    assert lint("""
        class Thing:
            __slots__ = ("x",)

            def __init__(self):
                self.x = 1
        """, path="repro/core/code.py") == []


def test_missing_slots_exemptions():
    # exception types, enums, and dataclasses are dict-backed on
    # purpose and must not be flagged
    assert lint("""
        import enum
        from dataclasses import dataclass

        class BadThing(Exception):
            pass

        class WorseThing(TimelineError):
            pass

        class Mode(enum.Enum):
            A = 1

        @dataclass
        class Record:
            x: int = 0
        """, path="repro/core/code.py") == []


def test_hot_loop_attr_condition_and_body_both_flagged():
    # the while-condition re-evaluates per iteration just like the
    # body; engine.<field> receivers count the same as self.<field>
    findings = lint("""
        def run(engine, until):
            while engine.events:
                engine.profiler.account(1)
        """)
    assert rules_of(findings) == ["hot-loop-attr"]
    assert len(findings) == 2


def test_hot_loop_attr_hoisted_loop_is_clean():
    # the shape the engine's own run loops use: bind once, loop on
    # the local — nothing to flag
    assert lint("""
        def run(self, until):
            events = self.events
            profiler = self.profiler
            while events:
                profiler.account(events.pop())
        """) == []


def test_hot_loop_attr_only_in_run_named_functions():
    assert lint("""
        def drain(self):
            while self.events:
                self.events.pop()
        """) == []
    assert rules_of(lint("""
        def _run_fast(self):
            while self.events:
                pass
        """)) == ["hot-loop-attr"]


def test_hot_loop_attr_for_iterable_and_stores_exempt():
    # a for statement's iterable is evaluated once (not per
    # iteration) and rebinding the field is a store, not a lookup
    assert lint("""
        def run(self):
            for event in self.events:
                self.now = event.time
            while True:
                self.scheduler = None
        """) == []


def test_hot_loop_attr_nested_function_resets_scope():
    # a closure defined inside run() is not itself a run loop, and a
    # run() nested deeper is scoped to its own loops only
    assert lint("""
        def run(self):
            def behavior(ctx):
                while True:
                    yield ctx.self_check(self.events)
            return behavior
        """) == []


def test_hot_loop_attr_mutable_fields_not_flagged():
    # per-event engine state legitimately re-reads inside the loop
    assert lint("""
        def run(self, until):
            while not self._stopped:
                self.events_processed += 1
                t = self.now
        """) == []


def test_comment_line_marker_covers_next_line():
    assert lint("""
        import time
        def f():
            # schedlint: ignore[wall-clock] -- reason
            return time.time()
        """) == []


def test_suppression_wrong_rule_does_not_hide():
    findings = lint("""
        import time
        def f():
            return time.time()  # schedlint: ignore[set-iteration]
        """)
    assert rules_of(findings) == ["wall-clock"]


def test_bare_ignore_suppresses_all_rules():
    assert lint("""
        import time
        def f():
            return time.time()  # schedlint: ignore
        """) == []


def test_parse_error_reported_as_finding():
    findings = lint("def f(:\n")
    assert rules_of(findings) == ["parse-error"]


# ----------------------------------------------------------------------
# contract checker
# ----------------------------------------------------------------------

class IncompleteScheduler(SchedClass):
    """Deliberately broken: missing hooks, wrong signature, no name."""

    # note: no `name` override
    def init_core(self, core):
        return []

    def enqueue_task(self, core, thread):  # missing `flags`
        pass

    def pick_next(self, core):
        return None

    # dequeue_task / select_task_rq / runnable_threads not overridden


class CompleteScheduler(SchedClass):
    """Minimal but contract-clean scheduler."""

    name = "test-complete"

    def init_core(self, core):
        return []

    def enqueue_task(self, core, thread, flags):
        core.rq.append(thread)

    def dequeue_task(self, core, thread, flags):
        core.rq.remove(thread)

    def pick_next(self, core):
        return core.rq[0] if core.rq else None

    def select_task_rq(self, thread, flags, waker=None):
        return 0

    def runnable_threads(self, core):
        return list(core.rq)


def test_incomplete_scheduler_flagged():
    findings = check_sched_class(IncompleteScheduler)
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)
    # three abstract hooks not overridden
    missing = " ".join(f.message for f in by_rule["contract-missing-hook"])
    for hook in ("dequeue_task", "select_task_rq", "runnable_threads"):
        assert hook in missing
    # enqueue_task dropped the flags parameter
    assert any("enqueue_task" in f.message
               for f in by_rule["contract-signature"])
    assert "contract-name" in by_rule


def test_complete_scheduler_clean():
    assert check_sched_class(CompleteScheduler) == []


def test_extra_defaulted_params_are_compatible():
    class Extended(CompleteScheduler):
        name = "test-extended"

        def enqueue_task(self, core, thread, flags, boost=False):
            pass

    assert check_sched_class(Extended) == []


def test_registered_classes_exclude_test_fixtures():
    classes = registered_sched_classes()
    assert classes, "builtin schedulers must be registered"
    assert all(c.__module__.startswith("repro.") for c in classes)
    assert IncompleteScheduler not in classes


def test_registered_builtin_schedulers_are_contract_clean():
    for cls in registered_sched_classes():
        assert check_sched_class(cls) == [], cls


# ----------------------------------------------------------------------
# FreeBSD API mapping checker
# ----------------------------------------------------------------------

def test_shipped_freebsd_api_clean():
    assert check_freebsd_api() == []


def test_freebsd_api_wrong_hook_detected():
    source = textwrap.dedent("""
        class FreeBSDSchedAdapter:
            def __init__(self, sched):
                self._sched = sched

            def sched_add(self, core, thread):
                self._sched.enqueue_task(core, thread, 0)

            def sched_wakeup(self, core, thread):
                self._sched.enqueue_task(core, thread, 1)

            def sched_rem(self, core, thread):
                self._sched.enqueue_task(core, thread, 0)  # wrong hook

            def sched_relinquish(self, core):
                self._sched.yield_task(core)

            def sched_choose(self, core):
                return self._sched.pick_next(core)

            def sched_switch(self, core, thread, delta_ns=0):
                self._sched.update_curr(core, thread, delta_ns)

            def sched_pickcpu(self, thread, waking=True, waker=None):
                return self._sched.select_task_rq(thread, 0, waker)
        """)
    findings = check_freebsd_api(source=source, path="fixture.py")
    assert any(f.rule == "freebsd-api-mapping"
               and "sched_rem" in f.message for f in findings)


def test_freebsd_api_missing_and_unmapped_detected():
    source = textwrap.dedent("""
        class FreeBSDSchedAdapter:
            def __init__(self, sched):
                self._sched = sched

            def sched_preempt(self, core):
                self._sched.pick_next(core)
        """)
    findings = check_freebsd_api(source=source, path="fixture.py")
    rules = rules_of(findings)
    assert "freebsd-api-missing" in rules
    assert "freebsd-api-unmapped" in rules


# ----------------------------------------------------------------------
# CLI: exit codes, JSON report, repo cleanliness
# ----------------------------------------------------------------------

def test_repo_tree_is_clean():
    """The shipped src/repro tree must lint clean (exit code 0)."""
    assert main([os.path.join(SRC_ROOT, "repro")]) == 0


def test_fixture_tree_with_all_rules_fails(tmp_path, capsys):
    """A tree with one violation of each rule exits nonzero and
    reports every rule."""
    tree = tmp_path / "pkg"
    tree.mkdir()
    for rule, snippet in FIXTURES.items():
        name = rule.replace("-", "_") + ".py"
        # path-gated rules need their fixture under a matching subdir
        subdir = tree / os.path.dirname(fixture_path(rule))
        subdir.mkdir(parents=True, exist_ok=True)
        (subdir / name).write_text(textwrap.dedent(snippet))
    code = main(["--no-contract", str(tree)])
    assert code == 1
    out = capsys.readouterr().out
    for rule in FIXTURES:
        assert rule in out


def test_json_report(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "bad.py").write_text("import time\nt = time.time()\n")
    report_file = tmp_path / "report.json"
    code = main(["--no-contract", "--json", str(report_file),
                 str(tree)])
    assert code == 1
    report = json.loads(report_file.read_text())
    assert report["tool"] == "schedlint"
    assert report["clean"] is False
    assert report["counts"] == {"wall-clock": 1}
    (entry,) = report["findings"]
    assert entry["rule"] == "wall-clock"
    assert entry["line"] == 2


def test_unknown_rule_is_usage_error(capsys):
    assert main(["--rules", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_module_entry_point():
    """`python -m repro.analysis.lint` works and exits 0 on the repo."""
    env = dict(os.environ, PYTHONPATH=SRC_ROOT)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "pkg"
    sub = pkg / "sub"
    sub.mkdir(parents=True)
    (pkg / "ok.py").write_text("x = 1\n")
    (sub / "bad.py").write_text("import time\nt = time.time()\n")
    findings = lint_paths([str(pkg)])
    assert len(findings) == 1
    assert findings[0].path.endswith("bad.py")


# ----------------------------------------------------------------------
# suppression v2: file scope + unused-marker hygiene
# ----------------------------------------------------------------------

WALL_CLOCK_MOD = (
    '"""doc."""\n'
    '{marker}'
    'import time\n'
    'def f():\n'
    '    return time.time()\n')


def test_file_ignore_suppresses_named_rule_across_module():
    src = WALL_CLOCK_MOD.format(
        marker="# schedlint: file-ignore[wall-clock] -- test\n")
    assert lint_source(src, path="repro/x.py") == []


def test_file_ignore_below_docstring_region_is_inert():
    src = ('"""doc."""\n'
           'import time\n'
           '# schedlint: file-ignore[wall-clock] -- too late\n'
           'def f():\n'
           '    return time.time()\n')
    assert rules_of(lint_source(src, path="repro/x.py")) == \
        ["wall-clock"]
    # ... and the dataflow tier calls the misplacement out
    flagged = lint_source(src, path="repro/x.py", dataflow=True)
    assert any(f.rule == "unused-suppression"
               and "outside the module docstring region" in f.message
               for f in flagged)


def test_bare_file_ignore_is_never_honored():
    src = WALL_CLOCK_MOD.format(
        marker="# schedlint: file-ignore -- blanket\n")
    assert rules_of(lint_source(src, path="repro/x.py")) == \
        ["wall-clock"]
    flagged = lint_source(src, path="repro/x.py", dataflow=True)
    assert any(f.rule == "unused-suppression"
               and "explicit rules" in f.message for f in flagged)


def test_unused_line_marker_flagged_only_in_dataflow_tier():
    src = ('"""doc."""\n'
           'X = 1  # schedlint: ignore[set-iteration] -- stale\n')
    assert lint_source(src, path="repro/x.py") == []
    flagged = lint_source(src, path="repro/x.py", dataflow=True)
    assert rules_of(flagged) == ["unused-suppression"]
    assert "suppressed nothing" in flagged[0].message


def test_other_tier_markers_not_flagged_as_unused():
    # wall-clock is replaced (disabled) under --dataflow: a marker
    # naming it may be load-bearing for the basic tier and must
    # survive a dataflow run untouched
    src = ('"""doc."""\n'
           'import time\n'
           'def f():\n'
           '    return time.time()  '
           '# schedlint: ignore[wall-clock] -- intentional\n')
    assert lint_source(src, path="repro/x.py") == []
    assert lint_source(src, path="repro/x.py", dataflow=True) == []


def test_used_marker_not_flagged_in_dataflow_tier():
    src = ('"""doc."""\n'
           'def f():\n'
           '    for x in {1, 2}:  '
           '# schedlint: ignore[set-iteration] -- bounded\n'
           '        print(x)\n')
    assert lint_source(src, path="repro/x.py", dataflow=True) == []


def test_marker_text_inside_docstring_is_inert():
    # marker *examples* in documentation must neither suppress nor
    # count as stale markers (they are strings, not comments)
    src = ('"""Suppress with\n'
           '# schedlint: ignore[wall-clock] -- reason\n'
           'or file-wide with\n'
           '# schedlint: file-ignore[wall-clock] -- reason\n'
           '"""\n'
           'import time\n'
           'def f():\n'
           '    return time.time()\n')
    assert rules_of(lint_source(src, path="repro/x.py")) == \
        ["wall-clock"]
    flagged = lint_source(src, path="repro/x.py", dataflow=True)
    assert "unused-suppression" not in rules_of(flagged)


# ----------------------------------------------------------------------
# hot-loop-attr regressions: async loops and chained receivers
# ----------------------------------------------------------------------

def test_hot_loop_attr_async_for_flagged():
    findings = lint("""
        async def run(self):
            async for item in self.inbox:
                self.profiler.tick()
        """)
    assert rules_of(findings) == ["hot-loop-attr"]


def test_hot_loop_attr_chained_engine_receiver_flagged():
    findings = lint("""
        def run(self, until):
            while True:
                self.engine.events.pop()
        """)
    assert rules_of(findings) == ["hot-loop-attr"]
    assert "self.engine.events" in findings[0].message


def test_hot_loop_attr_unrelated_chain_not_flagged():
    findings = lint("""
        def run(self, until):
            while True:
                self.core.events.pop()
        """)
    assert findings == []
