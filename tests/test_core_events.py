"""Tests for the event queue."""

import pytest

from repro.core.events import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    fired = []
    q.post(30, fired.append, "c")
    q.post(10, fired.append, "a")
    q.post(20, fired.append, "b")
    while True:
        e = q.pop()
        if e is None:
            break
        e.callback(*e.args)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    q = EventQueue()
    fired = []
    for i in range(10):
        q.post(5, fired.append, i)
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == list(range(10))


def test_cancelled_events_are_skipped():
    q = EventQueue()
    fired = []
    keep = q.post(1, fired.append, "keep")
    drop = q.post(1, fired.append, "drop")
    drop.cancel()
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == ["keep"]
    assert not keep.cancelled


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.post(1, lambda: None)
    q.post(2, lambda: None)
    assert q.peek_time() == 1
    first.cancel()
    assert q.peek_time() == 2


def test_len_counts_live_events():
    q = EventQueue()
    a = q.post(1, lambda: None)
    q.post(2, lambda: None)
    assert len(q) == 2
    a.cancel()
    assert len(q) == 1
    assert bool(q)


def test_empty_queue():
    q = EventQueue()
    assert q.pop() is None
    assert q.peek_time() is None
    assert not q


# ------------------------------------------------------------ satellites:
# O(1) live count, idempotent cancel, reusable events, compaction


def test_cancel_is_idempotent():
    q = EventQueue()
    a = q.post(1, lambda: None)
    q.post(2, lambda: None)
    a.cancel()
    a.cancel()
    a.cancel()
    assert len(q) == 1


def test_cancel_after_pop_is_a_noop():
    q = EventQueue()
    a = q.post(1, lambda: None)
    q.post(2, lambda: None)
    popped = q.pop()
    assert popped is a
    a.cancel()  # already fired: must not decrement the live count
    assert not a.cancelled
    assert len(q) == 1
    assert q.pop() is not None
    assert q.pop() is None


def test_len_is_constant_time_bookkeeping():
    q = EventQueue()
    events = [q.post(i, lambda: None) for i in range(100)]
    assert len(q) == 100
    for e in events[::2]:
        e.cancel()
    assert len(q) == 50
    for _ in range(50):
        assert q.pop() is not None
    assert len(q) == 0
    assert q.pop() is None


def test_repost_keeps_fifo_order_with_fresh_posts():
    q = EventQueue()
    fired = []
    tick = q.make_reusable(fired.append, "tick")
    q.repost(tick, 5)
    q.post(5, fired.append, "later")  # posted after: fires after
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == ["tick", "later"]


def test_repost_cycle_reuses_one_event_object():
    q = EventQueue()
    fired = []
    tick = q.make_reusable(fired.append, "t", label="tick")
    q.repost(tick, 1)
    for expected_time in (1, 2, 3):
        e = q.pop()
        assert e is tick
        assert e.time == expected_time
        e.callback(*e.args)
        if expected_time < 3:
            q.repost(tick, expected_time + 1)
    assert fired == ["t", "t", "t"]
    assert len(q) == 0


def test_cancelled_reusable_event_can_be_reposted():
    q = EventQueue()
    fired = []
    tick = q.make_reusable(fired.append, "x")
    q.repost(tick, 1)
    tick.cancel()
    assert len(q) == 0
    assert q.pop() is None  # heap drains the cancelled entry
    q.repost(tick, 2)
    e = q.pop()
    assert e is tick and e.time == 2


def test_heap_compaction_drops_dead_entries():
    q = EventQueue()
    live = [q.post(10_000 + i, lambda: None) for i in range(10)]
    dead = [q.post(i, lambda: None) for i in range(500)]
    for e in dead:
        e.cancel()
    # Far more cancelled than live entries: the heap must have been
    # rebuilt rather than retaining all 500 dead events.
    assert len(q) == 10
    assert len(q._heap) < 100
    assert q._dead_in_heap * 2 <= len(q._heap) or q._dead_in_heap <= 64
    times = [q.pop().time for _ in range(10)]
    assert times == sorted(times)
    assert all(t >= 10_000 for t in times)
    assert live[0].popped


# ------------------------------------------------------------ satellites:
# cancel() return value contract (double-cancel regression)


def test_cancel_returns_true_once_then_false():
    q = EventQueue()
    a = q.post(1, lambda: None)
    assert a.cancel() is True
    assert a.cancel() is False  # second cancel: documented no-op
    assert a.cancel() is False
    assert len(q) == 0


def test_cancel_after_fire_returns_false():
    q = EventQueue()
    a = q.post(1, lambda: None)
    assert q.pop() is a
    assert a.cancel() is False  # already fired: no-op
    assert not a.cancelled


def test_cancel_never_scheduled_reusable_returns_false():
    q = EventQueue()
    tick = q.make_reusable(lambda: None)
    assert tick.cancel() is False  # never in the heap: no-op
    assert len(q) == 0
    # ... but once reposted it is live and cancellable again.
    q.repost(tick, 3)
    assert tick.cancel() is True
    assert tick.cancel() is False
