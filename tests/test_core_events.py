"""Tests for the event queue."""

import pytest

from repro.core.events import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    fired = []
    q.post(30, fired.append, "c")
    q.post(10, fired.append, "a")
    q.post(20, fired.append, "b")
    while True:
        e = q.pop()
        if e is None:
            break
        e.callback(*e.args)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    q = EventQueue()
    fired = []
    for i in range(10):
        q.post(5, fired.append, i)
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == list(range(10))


def test_cancelled_events_are_skipped():
    q = EventQueue()
    fired = []
    keep = q.post(1, fired.append, "keep")
    drop = q.post(1, fired.append, "drop")
    drop.cancel()
    while (e := q.pop()) is not None:
        e.callback(*e.args)
    assert fired == ["keep"]
    assert not keep.cancelled


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.post(1, lambda: None)
    q.post(2, lambda: None)
    assert q.peek_time() == 1
    first.cancel()
    assert q.peek_time() == 2


def test_len_counts_live_events():
    q = EventQueue()
    a = q.post(1, lambda: None)
    q.post(2, lambda: None)
    assert len(q) == 2
    a.cancel()
    assert len(q) == 1
    assert bool(q)


def test_empty_queue():
    q = EventQueue()
    assert q.pop() is None
    assert q.peek_time() is None
    assert not q
