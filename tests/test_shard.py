"""The leased work-stealing shard executor: serial equivalence,
in-flight dedupe, checkpoint/cache short-circuits, poison-cell
quarantine, SIGKILL survival, serial degradation — and the capstone
chaos test: a multi-thousand-cell sweep that loses its supervisor
*and* three workers to SIGKILL, resumes, and still produces results
byte-identical to an uninterrupted serial run with no
already-checkpointed cell executed twice."""

import json
import multiprocessing
import os
import signal
import time
from collections import Counter

import pytest

from repro.experiments.cellcache import CellCache
from repro.experiments.checkpoint import CampaignCheckpoint
from repro.experiments.parallel import FailedCell
from repro.experiments.shard import shard_map
from repro.faults.procchaos import WorkerKiller


# ------------------------------------------------------- cell functions
# (module-level: workers inherit them across fork)


def _triple(cell):
    return {"v": cell["i"] * 3}


def _logged(cell):
    """Log one execution line (O_APPEND, atomic per line) then
    compute; the chaos capstone counts these to prove no finished
    cell ever re-executes."""
    with open(os.path.join(cell["log"], f"{os.getpid()}.log"),
              "a") as fh:
        fh.write(f"{cell['i']}\n")
        fh.flush()
    return {"v": cell["i"] * 3}


def _slow_logged(cell):
    result = _logged(cell)
    time.sleep(0.002)
    return result


def _suicide_or_triple(cell):
    """The poison cell: SIGKILL the worker that runs it.  Everything
    else computes normally."""
    if cell.get("suicide"):
        os.kill(os.getpid(), signal.SIGKILL)
    return _triple(cell)


def _executions(log_dir) -> Counter:
    counts = Counter()
    for name in os.listdir(log_dir):
        with open(os.path.join(log_dir, name)) as fh:
            counts.update(int(line) for line in fh if line.strip())
    return counts


# ------------------------------------------------------------ contract


def test_results_in_submission_order_match_serial(tmp_path):
    cells = [{"i": i} for i in range(40)]
    results = shard_map(_triple, cells, 2,
                        store_dir=tmp_path / "store")
    assert results == [_triple(cell) for cell in cells]


def test_supervisor_serial_path_when_single_worker(tmp_path):
    cells = [{"i": i} for i in range(10)]
    results = shard_map(_triple, cells, 1,
                        store_dir=tmp_path / "store")
    assert results == [_triple(cell) for cell in cells]


def test_duplicate_cells_collapse_to_one_execution(tmp_path):
    log = tmp_path / "log"
    log.mkdir()
    base = [{"i": i, "log": str(log)} for i in range(20)]
    cells = base * 3  # every cell three times
    results = shard_map(_logged, cells, 2,
                        store_dir=tmp_path / "store")
    assert results == [_triple(cell) for cell in cells]
    counts = _executions(log)
    assert sum(counts.values()) == 20  # one execution per content key
    assert all(count == 1 for count in counts.values())


def test_checkpointed_cells_replay_without_execution(tmp_path):
    log = tmp_path / "log"
    log.mkdir()
    cells = [{"i": i, "log": str(log)} for i in range(10)]
    checkpoint = CampaignCheckpoint(tmp_path / "ck.jsonl",
                                    meta={"m": 1})
    for cell in cells[:6]:
        checkpoint.put(cell, {"v": "replayed"})  # marker value
    results = shard_map(_logged, cells, 2,
                        store_dir=tmp_path / "store",
                        checkpoint=checkpoint)
    assert results[:6] == [{"v": "replayed"}] * 6
    assert results[6:] == [_triple(cell) for cell in cells[6:]]
    assert set(_executions(log)) == {6, 7, 8, 9}


def test_cache_hits_skip_execution_and_backfill_checkpoint(tmp_path):
    log = tmp_path / "log"
    log.mkdir()
    cells = [{"i": i, "log": str(log)} for i in range(6)]
    cache = CellCache(tmp_path / "cache", fingerprint="fp-shard")
    for cell in cells[:4]:
        cache.put(cell, {"v": "cached"})
    checkpoint = CampaignCheckpoint(tmp_path / "ck.jsonl",
                                    meta={"m": 1})
    results = shard_map(_logged, cells, 2,
                        store_dir=tmp_path / "store",
                        checkpoint=checkpoint, cache=cache)
    assert results == [{"v": "cached"}] * 4 + \
        [_triple(cell) for cell in cells[4:]]
    assert set(_executions(log)) == {4, 5}
    # cache hits are copied into the checkpoint, and computed cells
    # land in the cache: both layers end up complete
    assert all(checkpoint.get(cell) is not checkpoint.MISS
               for cell in cells)
    assert all(cache.get(cell) is not cache.MISS for cell in cells)


def _outlives_lease(cell):
    """A healthy cell that takes several lease durations to finish:
    only the heartbeat keeps it from being stolen."""
    time.sleep(cell["sleep_s"])
    return _triple(cell)


def test_heartbeat_keeps_slow_cell_leased_in_worker(tmp_path):
    """Regression: the heartbeat runs in a thread, and sqlite
    connections are thread-bound — a heartbeat sharing the worker's
    connection dies on its first renew, so any cell slower than the
    lease was stolen, then falsely poison-quarantined."""
    cells = [{"i": i, "sleep_s": 0.7} for i in range(2)]
    results = shard_map(_outlives_lease, cells, 2,
                        store_dir=tmp_path / "store", lease_s=0.2)
    assert results == [_triple(cell) for cell in cells]


# ------------------------------------------------------------ robustness


def test_poison_cell_quarantined_sweep_survives(tmp_path):
    cells = [{"i": i} for i in range(8)]
    cells.insert(3, {"i": 99, "suicide": True})
    results = shard_map(_suicide_or_triple, cells, 2,
                        store_dir=tmp_path / "store", lease_s=0.3)
    poison = results[3]
    assert isinstance(poison, FailedCell)
    assert poison.reason == "poison"
    assert "crashed 2 workers" in poison.error
    clean = results[:3] + results[4:]
    assert clean == [_triple(cell) for cell in cells
                     if not cell.get("suicide")]


def test_worker_sigkills_do_not_change_results(tmp_path):
    log = tmp_path / "log"
    log.mkdir()
    cells = [{"i": i, "log": str(log)} for i in range(250)]
    killer = WorkerKiller(2, seed=3, min_gap_s=0.05, max_gap_s=0.15)
    results = shard_map(_slow_logged, cells, 3,
                        store_dir=tmp_path / "store", lease_s=0.5,
                        chaos=killer)
    assert results == [_triple(cell) for cell in cells]
    assert len(killer.killed) == 2  # the chaos budget was spent


def test_unrespawnable_pool_degrades_to_serial(tmp_path):
    cells = [{"i": i} for i in range(30)]
    # kill every worker immediately and forbid replacements: the
    # supervisor must finish the sweep in-process
    killer = WorkerKiller(2, seed=1, min_gap_s=0.0, max_gap_s=0.001)
    results = shard_map(_triple, cells, 2,
                        store_dir=tmp_path / "store", lease_s=0.3,
                        respawn_budget=0, chaos=killer)
    assert results == [_triple(cell) for cell in cells]


def test_failing_cell_retries_then_marks_failed(tmp_path):
    def check(results):
        failure = results[1]
        assert isinstance(failure, FailedCell)
        assert failure.reason == "error"
        assert "RuntimeError" in failure.error

    cells = [{"i": 0}, {"i": 1, "boom": True}, {"i": 2}]
    results = shard_map(_boom_flagged, cells, 2,
                        store_dir=tmp_path / "store",
                        retries=1, backoff_s=0.01)
    assert results[0] == _triple(cells[0])
    assert results[2] == _triple(cells[2])
    check(results)


def _boom_flagged(cell):
    if cell.get("boom"):
        raise RuntimeError(f"bad cell {cell['i']}")
    return _triple(cell)


# ------------------------------------------------------------ capstone


CAPSTONE_N = 2400
CAPSTONE_META = {"sweep": "capstone"}


def _capstone_cells(log_dir):
    return [{"i": i, "log": str(log_dir)} for i in range(CAPSTONE_N)]


def _capstone_child(store_dir, checkpoint_path, log_dir):
    """Phase-1 supervisor, run in a child so the test can SIGKILL
    it."""
    checkpoint = CampaignCheckpoint(checkpoint_path,
                                    meta=CAPSTONE_META)
    checkpoint.load(resume=True)
    shard_map(_logged, _capstone_cells(log_dir), 3,
              store_dir=store_dir, lease_s=0.5, checkpoint=checkpoint)


def _render(cells, results):
    return "".join(
        f"{cell['i']}: {json.dumps(result, sort_keys=True)}\n"
        for cell, result in zip(cells, results))


def test_chaos_capstone_supervisor_and_worker_sigkills(tmp_path):
    """The acceptance scenario: a multi-thousand-cell sweep loses its
    supervisor to SIGKILL mid-run, is resumed (the ``--resume``
    machinery: same checkpoint journal, same store), loses three more
    workers to seeded SIGKILLs — and the merged report is
    byte-identical to an uninterrupted serial run, with no cell
    executed again once checkpointed."""
    log = tmp_path / "log"
    log.mkdir()
    store_dir = tmp_path / "store"
    checkpoint_path = tmp_path / "ck.jsonl"
    cells = _capstone_cells(log)

    # the uninterrupted serial reference (pure compute, no store)
    reference = _render(cells, [_triple(cell) for cell in cells])

    # phase 1: SIGKILL the whole sharded campaign mid-sweep
    child = multiprocessing.Process(
        target=_capstone_child,
        args=(str(store_dir), str(checkpoint_path), str(log)))
    child.start()
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and child.is_alive():
        try:
            with open(checkpoint_path) as fh:
                finished = sum(1 for _ in fh) - 1
        except OSError:
            finished = 0
        if finished >= CAPSTONE_N // 8:
            break
        time.sleep(0.01)
    assert child.is_alive(), "sweep finished before it could be killed"
    os.kill(child.pid, signal.SIGKILL)
    child.join()

    checkpoint = CampaignCheckpoint(checkpoint_path,
                                    meta=CAPSTONE_META)
    replayed = checkpoint.load(resume=True)
    assert 0 < replayed < CAPSTONE_N, "kill landed mid-sweep"
    finished_keys = {cell["i"] for cell in cells
                     if checkpoint.get(cell) is not checkpoint.MISS}
    # give phase-1 orphan workers a beat to notice the dead
    # supervisor and exit before counting phase-1 executions
    time.sleep(0.3)
    phase1 = _executions(log)

    # phase 2: resume; SIGKILL three workers while it runs
    killer = WorkerKiller(3, seed=11, min_gap_s=0.05, max_gap_s=0.15)
    results = shard_map(_logged, cells, 3, store_dir=store_dir,
                        lease_s=0.5, checkpoint=checkpoint,
                        chaos=killer)

    assert len(killer.killed) >= 3
    report = _render(cells, results)
    assert report == reference  # byte-identical to the serial run

    # no cell executed twice once a checkpointed result existed
    phase2 = _executions(log)
    phase2.subtract(phase1)
    re_executed = {i for i, extra in phase2.items()
                   if extra > 0 and i in finished_keys}
    assert re_executed == set()


# ------------------------------------------------------------ campaign


def _fake_campaign_cell(cell):
    return {"experiment": cell["experiment"], "claim": "ok",
            "text": f"rows for {cell['experiment']}\n"}


def test_run_campaign_through_shard_executor(tmp_path, monkeypatch):
    from repro.experiments import campaign

    monkeypatch.setattr(campaign, "run_campaign_cell",
                        _fake_campaign_cell)
    checkpoint_path = tmp_path / "ck.jsonl"
    store_dir = tmp_path / "store"
    cells, results = campaign.run_campaign(
        ["alpha", "beta"], quick=True, seed=1,
        checkpoint_path=checkpoint_path, shard_workers=2,
        store_dir=store_dir)
    assert [r["experiment"] for r in results] == ["alpha", "beta"]
    report = campaign.render_report(cells, results)
    assert "rows for alpha" in report and "rows for beta" in report
    # a fully successful campaign removes both manifest and store
    assert not checkpoint_path.exists()
    assert not (store_dir / "cells.sqlite3").exists()


def test_run_campaign_rejects_reseed_with_sharding(tmp_path):
    from repro.experiments.campaign import run_campaign

    with pytest.raises(ValueError, match="reseed"):
        run_campaign(["alpha"], reseed=True, shard_workers=2,
                     store_dir=tmp_path / "store")


def test_cli_accepts_shard_flags():
    from repro.experiments.__main__ import build_parser

    args = build_parser().parse_args(
        ["run", "--shard-workers", "4", "--store-dir", "/tmp/s",
         "--resume"])
    assert args.shard_workers == 4
    assert args.store_dir == "/tmp/s"
    assert args.resume
