"""Engine fast mode (``Engine(fast=True)`` / ``REPRO_FAST``).

Two contracts:

* **digest identity** — the specialized run loop produces the same
  canonical schedule (digest, stop reason, final time) as the
  instrumented loop on fuzzer scenarios under both schedulers;
* **clean fallback** — ``run()`` silently selects the instrumented
  loop whenever any observer needs its hooks (sanitizer, profiler,
  fault injector, or a registered tracer), so turning instrumentation
  on never loses events and never needs the caller to unset fast.
"""

import pytest

from repro.core.clock import msec
from repro.core.engine import Engine
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.testing.fuzzer import (ThreadSpec, behavior_from_plan,
                                  generate_scenario)
from repro.tracing.digest import schedule_digest


def _run(scenario, sched, fast):
    topo = smp(scenario.ncpus, cpus_per_llc=scenario.cpus_per_llc)
    engine = Engine(topo, scheduler_factory(sched),
                    seed=scenario.seed, fast=fast)
    for ft in scenario.threads:
        engine.spawn(ThreadSpec(
            ft.name, behavior_from_plan(ft.plan), nice=ft.nice,
            affinity=(frozenset(ft.affinity)
                      if ft.affinity is not None else None),
            app=ft.app), at=msec(ft.spawn_at_ms))
    reason = engine.run(until=msec(scenario.until_ms))
    return (schedule_digest(engine), reason, engine.now,
            engine.events_processed)


@pytest.mark.parametrize("seed", (0, 1, 2))
@pytest.mark.parametrize("sched", ("cfs", "ule"))
def test_fast_loop_digest_identical(seed, sched):
    scenario = generate_scenario(seed, smoke=True)
    assert _run(scenario, sched, fast=True) == \
        _run(scenario, sched, fast=False), scenario.describe()


# ----------------------------------------------------------------------
# fallback selection
# ----------------------------------------------------------------------


@pytest.fixture
def chosen_loop(monkeypatch):
    """Record which run loop ``run()`` selects."""
    chosen = []
    orig_fast = Engine._run_fast
    orig_instr = Engine._run_instrumented

    def spy_fast(self, *args):
        chosen.append("fast")
        return orig_fast(self, *args)

    def spy_instr(self, *args):
        chosen.append("instrumented")
        return orig_instr(self, *args)

    monkeypatch.setattr(Engine, "_run_fast", spy_fast)
    monkeypatch.setattr(Engine, "_run_instrumented", spy_instr)
    return chosen


def _spin_engine(**kw):
    from repro.core import Run

    engine = Engine(smp(2), scheduler_factory("cfs"), seed=1, **kw)

    def worker(ctx):
        while True:
            yield Run(msec(1))

    engine.spawn(ThreadSpec("w", worker, app="app"))
    return engine


def test_fast_engine_uses_fast_loop(chosen_loop):
    _spin_engine(fast=True).run(until=msec(5))
    assert chosen_loop == ["fast"]


def test_default_engine_uses_instrumented_loop(chosen_loop):
    _spin_engine().run(until=msec(5))
    assert chosen_loop == ["instrumented"]


def test_sanitize_falls_back(chosen_loop):
    _spin_engine(fast=True, sanitize=True).run(until=msec(5))
    assert chosen_loop == ["instrumented"]


def test_profiler_falls_back(chosen_loop):
    engine = _spin_engine(fast=True, profile=True)
    assert engine.profiler is not None
    engine.run(until=msec(5))
    assert chosen_loop == ["instrumented"]


def test_faults_fall_back(chosen_loop):
    from repro.faults.plan import FaultPlan, TickJitter

    plan = FaultPlan(faults=(
        TickJitter(start_ns=msec(1), end_ns=msec(3),
                   max_jitter_ns=1000),))
    _spin_engine(fast=True, faults=plan).run(until=msec(5))
    assert chosen_loop == ["instrumented"]


def test_tracer_hook_falls_back(chosen_loop):
    engine = _spin_engine(fast=True)
    engine.tracer.on_switch.append(lambda *a: None)
    engine.run(until=msec(5))
    assert chosen_loop == ["instrumented"]


def test_fallback_digest_matches_fast(chosen_loop):
    """The fallback is behavioural only: with the sanitizer on, the
    schedule is still the one the fast loop produces."""
    scenario = generate_scenario(0, smoke=True)

    def run(**kw):
        topo = smp(scenario.ncpus, cpus_per_llc=scenario.cpus_per_llc)
        engine = Engine(topo, scheduler_factory("cfs"),
                        seed=scenario.seed, **kw)
        for ft in scenario.threads:
            engine.spawn(ThreadSpec(
                ft.name, behavior_from_plan(ft.plan), nice=ft.nice,
                affinity=(frozenset(ft.affinity)
                          if ft.affinity is not None else None),
                app=ft.app), at=msec(ft.spawn_at_ms))
        engine.run(until=msec(scenario.until_ms))
        return schedule_digest(engine)

    assert run(fast=True) == run(fast=True, sanitize=True)
    assert chosen_loop == ["fast", "instrumented"]


# ----------------------------------------------------------------------
# environment probe
# ----------------------------------------------------------------------


def test_repro_fast_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    assert Engine(smp(1), scheduler_factory("cfs")).fast
    monkeypatch.setenv("REPRO_FAST", "0")
    assert not Engine(smp(1), scheduler_factory("cfs")).fast
    monkeypatch.delenv("REPRO_FAST")
    assert not Engine(smp(1), scheduler_factory("cfs")).fast
    monkeypatch.setenv("REPRO_FAST", "1")
    assert not Engine(smp(1), scheduler_factory("cfs"), fast=False).fast
