"""Tests for ULE load balancing and placement at the unit level."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.topology import opteron_6172, smp
from repro.sched import scheduler_factory


def make_engine(ncpus=4, **kw):
    topo = opteron_6172() if ncpus == 32 else smp(ncpus)
    return Engine(topo, scheduler_factory("ule", **kw), seed=4)


def spin(ctx):
    yield run_forever()


def pin_spinners(eng, count, cpu=0):
    ts = [eng.spawn(ThreadSpec(f"s{i}", spin,
                               affinity=frozenset({cpu})))
          for i in range(count)]
    eng.run(until=msec(20))
    for t in ts:
        eng.set_affinity(t, None)
    return ts


def test_balancer_respects_donor_receiver_once():
    """Per invocation, each core is donor or receiver at most once, so
    at most ncpus/2 migrations can happen per invocation."""
    eng = make_engine(ncpus=4)
    pin_spinners(eng, 16)
    eng.run(until=sec(30))
    inv = eng.metrics.counter("ule.balance_invocations")
    moved = eng.metrics.counter("ule.balance_migrations")
    assert inv > 0
    assert moved <= inv * 2  # 4 cores -> max 2 pairs per invocation


def test_balancer_needs_gap_of_two():
    """Loads differing by one thread are left alone (the gain is
    zero)."""
    eng = make_engine(ncpus=2)
    a = eng.spawn(ThreadSpec("a", spin, affinity=frozenset({0})))
    b = eng.spawn(ThreadSpec("b", spin, affinity=frozenset({0})))
    c = eng.spawn(ThreadSpec("c", spin, affinity=frozenset({1})))
    eng.run(until=msec(20))
    for t in (a, b, c):
        eng.set_affinity(t, None)
    eng.run(until=sec(10))
    counts = sorted(eng.nr_runnable_on(i) for i in range(2))
    assert counts == [1, 2]
    assert eng.metrics.counter("ule.balance_migrations") == 0


def test_running_thread_never_migrated():
    """The paper's port rule: the balancer moves only queued threads."""
    eng = make_engine(ncpus=2)
    ts = pin_spinners(eng, 6)
    migrated_while_running = []

    def watch(thread, src, dst):
        if thread.is_running:
            migrated_while_running.append(thread)

    eng.tracer.on_migrate.append(watch)
    eng.run(until=sec(10))
    assert not migrated_while_running


def test_idle_steal_prefers_llc_victim():
    """The single idle core steals from the pile in its own LLC (the
    steal search starts at the cache level and widens)."""
    from repro.core.topology import smp as smp_topo
    eng = Engine(smp_topo(4, cpus_per_llc=2, numa_nodes=2),
                 scheduler_factory("ule", balance_enabled=False), seed=4)
    # cpu1 (cpu0's LLC sibling) holds a stealable pile; cpus 2 and 3
    # are busy but below the steal threshold.
    pile = [eng.spawn(ThreadSpec(f"p{i}", spin,
                                 affinity=frozenset({1})))
            for i in range(3)]
    for cpu in (2, 3):
        eng.spawn(ThreadSpec(f"busy{cpu}", spin,
                             affinity=frozenset({cpu})))
    eng.run(until=msec(20))
    for t in pile:
        eng.set_affinity(t, None)
    eng.run(until=msec(100))
    stolen = [t for t in pile if t.cpu == 0]
    assert len(stolen) == 1
    assert eng.metrics.counter("ule.idle_steals") == 1


def test_steal_thresh_leaves_singletons_alone():
    """A core with a single runnable thread is not a steal victim."""
    eng = make_engine(ncpus=4, balance_enabled=False)
    eng.spawn(ThreadSpec("only", spin, affinity=frozenset({3})))
    eng.run(until=msec(50))
    t = eng.threads[0]
    eng.set_affinity(t, None)
    eng.run(until=sec(2))
    assert t.cpu == 3
    assert eng.metrics.counter("ule.idle_steals") == 0


def test_pickcpu_prefers_affine_core():
    """A thread that recently ran on a core is placed back there when
    it would run promptly."""
    eng = make_engine(ncpus=4)

    def napper(ctx):
        for _ in range(50):
            yield Run(msec(1))
            yield Sleep(msec(4))

    t = eng.spawn(ThreadSpec("nap", napper))
    eng.run(until=sec(1))
    # a lone sleeper on an idle machine bounces between zero and one
    # migrations; it must not wander over the whole machine
    assert t.nr_migrations <= 2
