"""Tickless idle (NO_HZ) determinism.

The engine parks the periodic tick on idle cores whose scheduler
reports no periodic work (``SchedClass.needs_tick``) and re-arms it
phase-aligned from the wakeup/enqueue path.  The contract: a tickless
run is *bit-identical* to an always-tick run — same switches, same
per-thread runtimes, same experiment rows — it just processes fewer
events.
"""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.topology import smp
from repro.experiments.registry import run_experiment
from repro.sched import scheduler_factory
from tests.conftest import SCHEDULERS


def _churn_engine(sched: str, tickless: bool, seed: int = 3) -> Engine:
    """A wake/sleep-heavy mixed workload leaving cores idle often, so
    ticks park and restart many times."""
    engine = Engine(smp(4), scheduler_factory(sched), seed=seed,
                    tickless=tickless)

    def worker(ctx):
        for i in range(12):
            yield Run(usec(300 + 137 * (i % 5)))
            yield Sleep(usec(200 + 61 * (i % 7)))

    def spinner(ctx):
        yield Run(msec(30))

    for i in range(6):
        engine.spawn(ThreadSpec(f"w{i}", worker, app=f"app{i % 2}"))
    for i in range(2):
        engine.spawn(ThreadSpec(f"s{i}", spinner, app="spin"),
                     at=msec(2 * i))
    engine.run(until=msec(60))
    return engine


def _fingerprint(engine: Engine) -> dict:
    return {
        "switches": engine.metrics.counter("engine.switches"),
        "migrations": engine.metrics.counter("engine.migrations"),
        "preemptions": engine.metrics.counter("engine.preemptions"),
        "core_switches": [c.nr_switches for c in engine.machine.cores],
        "core_busy": [c.busy_ns for c in engine.machine.cores],
        "threads": [(t.name, t.state.name, t.total_runtime,
                     t.total_waittime, t.nr_switches, t.nr_migrations)
                    for t in engine.threads],
        "now": engine.now,
    }


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_tickless_is_bit_identical_to_always_tick(sched):
    tickless = _churn_engine(sched, tickless=True)
    always = _churn_engine(sched, tickless=False)
    assert _fingerprint(tickless) == _fingerprint(always)
    # ... and the tickless run actually parked ticks (otherwise this
    # test exercises nothing).
    assert tickless.metrics.counter("engine.tick_stops") > 0
    assert always.metrics.counter("engine.tick_stops") == 0
    # Parking removes events; the schedule must not notice.
    assert tickless.events_processed < always.events_processed


@pytest.mark.parametrize("sched", ("cfs", "ule"))
def test_idle_machine_processes_almost_no_events(sched):
    engine = Engine(smp(8), scheduler_factory(sched), seed=1,
                    tickless=True)

    def idler(ctx):
        yield Run(msec(1))
        yield Sleep(sec(2))

    engine.spawn(ThreadSpec("idler", idler))
    engine.run(until=sec(1))
    assert engine.now == sec(1)
    # Always-tick would process ~8000 tick events alone (8 cores x
    # 1 tick/ms x 1s); tickless parks them all once the thread sleeps.
    # What remains is the CFS balance-event chain (8 cores / 4 ms =
    # ~2000) or ULE's ~1/s balancer.
    assert engine.events_processed < 2600
    assert engine.metrics.counter("engine.tick_stops") >= 8


def test_restarted_tick_is_phase_aligned():
    engine = Engine(smp(2), scheduler_factory("cfs"), seed=0,
                    tickless=True)

    def sleeper(ctx):
        # Sleep across many tick periods, waking mid-period.
        yield Run(usec(100))
        yield Sleep(msec(10) + usec(357))
        yield Run(msec(5))

    engine.spawn(ThreadSpec("t", sleeper, affinity={1}))
    engine.run(until=msec(30))
    assert engine.metrics.counter("engine.tick_stops") > 0
    assert engine.metrics.counter("engine.tick_restarts") > 0
    for core in engine.machine.cores:
        # Every tick this core ever runs keeps its original stagger
        # phase: time == tick_origin (mod tick_ns).
        offset = core.tick_event.time - core.tick_origin
        assert offset % engine.scheduler.tick_ns == 0


def test_queue_drain_with_deadline_returns_deadline():
    # FIFO has no balancer event chain, so once its ticks park the
    # queue drains completely even though a thread is still blocked
    # (waiting on a channel nobody writes).  The always-tick engine
    # would idle-tick its way to the deadline; tickless must report
    # the same outcome.
    from repro.sync import Channel

    engine = Engine(smp(2), scheduler_factory("fifo"), seed=0,
                    tickless=True)
    chan = Channel(engine)

    def getter(ctx):
        yield chan.get()

    engine.spawn(ThreadSpec("blocked", getter))
    reason = engine.run(until=sec(3))
    assert reason == "deadline"
    assert engine.now == sec(3)
    assert engine.metrics.counter("engine.tick_stops") >= 2


def test_ule_loaded_counter_tracks_steal_threshold():
    engine = Engine(smp(2), scheduler_factory("ule"), seed=0,
                    tickless=True)
    sched = engine.scheduler
    spinners = [engine.spawn(ThreadSpec(
        f"s{i}", lambda ctx: iter([run_forever()]), affinity={0}))
        for i in range(3)]
    engine.run(until=msec(1))
    # Three spinners pinned to core 0: its tdq load is >= the steal
    # threshold, so needs_tick holds machine-wide (core 1 keeps
    # polling for steals even while idle... though affinity blocks it).
    assert sched._nr_loaded == 1
    assert sched.needs_tick(engine.machine.cores[1])


@pytest.mark.slow
@pytest.mark.parametrize("name", ("fig5", "fig6"))
def test_experiment_rows_identical_tickless_vs_always(name, monkeypatch):
    import repro.core.engine as engine_mod

    monkeypatch.setattr(engine_mod, "TICKLESS_DEFAULT", True)
    tickless = run_experiment(name, quick=True, seed=1)
    monkeypatch.setattr(engine_mod, "TICKLESS_DEFAULT", False)
    always = run_experiment(name, quick=True, seed=1)
    assert tickless.rows == always.rows
    assert tickless.data == always.data
