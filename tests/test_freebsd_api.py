"""Tests for the FreeBSD API adapter (the executable Table 1)."""

import pytest

from repro.core import Engine, Run, ThreadSpec, run_forever
from repro.core.clock import msec
from repro.core.topology import smp
from repro.sched import (TABLE1_MAPPINGS, FreeBSDSchedAdapter,
                         scheduler_factory)


@pytest.fixture(params=["fifo", "cfs", "ule"])
def engine_and_adapter(request):
    engine = Engine(smp(2), scheduler_factory(request.param), seed=5)
    return engine, FreeBSDSchedAdapter(engine.scheduler)


def spin(ctx):
    yield run_forever()


def test_table1_has_six_rows():
    assert len(TABLE1_MAPPINGS) == 6
    linux_names = {m.linux for m in TABLE1_MAPPINGS}
    assert linux_names == {"enqueue_task", "dequeue_task", "yield_task",
                           "pick_next_task", "put_prev_task",
                           "select_task_rq"}


def test_enqueue_dequeue_roundtrip(engine_and_adapter):
    engine, adapter = engine_and_adapter
    # two threads pinned to cpu 0 so one is queued-but-not-running
    engine.spawn(ThreadSpec("a", spin, affinity=frozenset({0})))
    b = engine.spawn(ThreadSpec("b", spin, affinity=frozenset({0})))
    engine.run(until=msec(5))
    victim = b if not b.is_running else engine.threads[0]
    core = engine.machine.cores[victim.rq_cpu]
    before = engine.scheduler.nr_runnable(core)
    adapter.sched_rem(core, victim)
    assert engine.scheduler.nr_runnable(core) == before - 1
    adapter.sched_add(core, victim)
    assert engine.scheduler.nr_runnable(core) == before


def test_sched_pickcpu_returns_valid_cpu(engine_and_adapter):
    engine, adapter = engine_and_adapter
    t = engine.spawn(ThreadSpec("t", spin))
    engine.run(until=msec(2))
    for waking in (True, False):
        cpu = adapter.sched_pickcpu(t, waking=waking)
        assert 0 <= cpu < 2


def test_sched_wakeup_maps_to_wakeup_flag(engine_and_adapter):
    """FreeBSD's two enqueue entry points both land in enqueue_task;
    sched_wakeup must behave like a wakeup (placement credit etc.)."""
    engine, adapter = engine_and_adapter
    a = engine.spawn(ThreadSpec("a", spin, affinity=frozenset({0})))
    b = engine.spawn(ThreadSpec("b", spin, affinity=frozenset({0})))
    engine.run(until=msec(5))
    victim = b if not b.is_running else a
    core = engine.machine.cores[victim.rq_cpu]
    adapter.sched_rem(core, victim)
    adapter.sched_wakeup(core, victim)
    assert victim in list(engine.scheduler.runnable_threads(core))
