"""Tests for the structured trace log and Chrome-trace export."""

import json

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.tracing import TraceLog


def make_traced_engine():
    eng = Engine(smp(2), scheduler_factory("fifo"), seed=3)
    log = TraceLog(eng)

    def worker(ctx):
        for _ in range(5):
            yield Run(msec(2))
            yield Sleep(msec(3))

    threads = [eng.spawn(ThreadSpec(f"w{i}", worker)) for i in range(4)]
    eng.run(until=sec(1))
    return eng, log, threads


def test_records_collected():
    eng, log, threads = make_traced_engine()
    assert log.switches
    assert log.wakes
    assert log.dropped == 0


def test_intervals_are_well_formed():
    eng, log, threads = make_traced_engine()
    for cpu, name, start, end in log.intervals():
        assert 0 <= cpu < 2
        assert end >= start


def test_intervals_cover_runtime():
    """Per-thread interval durations sum to its accounted runtime."""
    eng, log, threads = make_traced_engine()
    for t in threads:
        covered = sum(end - start
                      for _, name, start, end in log.timeline_of(t.name))
        assert covered == t.total_runtime


def test_no_overlapping_intervals_per_cpu():
    eng, log, threads = make_traced_engine()
    by_cpu = {}
    for cpu, name, start, end in log.intervals():
        by_cpu.setdefault(cpu, []).append((start, end))
    for cpu, spans in by_cpu.items():
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"overlap on cpu {cpu}"


def test_chrome_trace_is_valid_json():
    eng, log, threads = make_traced_engine()
    doc = json.loads(log.to_chrome_trace())
    events = doc["traceEvents"]
    assert any(e.get("ph") == "X" for e in events)
    assert any(e.get("ph") == "i" and e["cat"] == "wakeup"
               for e in events)
    names = {e["args"]["name"] for e in events if e.get("ph") == "M"}
    assert names == {"cpu0", "cpu1"}


def test_write_chrome_trace(tmp_path):
    eng, log, threads = make_traced_engine()
    path = tmp_path / "trace.json"
    log.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc


def test_bounded_memory():
    eng = Engine(smp(2), scheduler_factory("fifo"), seed=3)
    log = TraceLog(eng, max_records=50)

    def churn(ctx):
        for _ in range(200):
            yield Run(msec(1))
            yield Sleep(msec(1))

    eng.spawn(ThreadSpec("churn", churn))
    eng.run(until=sec(2))
    total = len(log.switches) + len(log.wakes) + len(log.migrations)
    assert total <= 50
    assert log.dropped > 0
