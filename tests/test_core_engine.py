"""Engine behaviour tests, run against the reference FIFO scheduler.

These validate the scheduler-independent contract: action
interpretation, accounting, sleep/wake, fork, affinity, stop
conditions.
"""

import pytest

from repro.core import (Engine, Run, Sleep, ThreadSpec, ThreadState, Yield,
                        run_forever)
from repro.core.actions import Fork
from repro.core.clock import msec, sec
from repro.core.errors import ThreadStateError
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory


def make_engine(ncpus=1, **kw):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory("fifo"), **kw)


def compute(duration):
    def behavior(ctx):
        yield Run(duration)
    return behavior


def test_single_thread_runs_to_completion():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("worker", compute(msec(5))))
    reason = eng.run(until=sec(1))
    assert reason == "all-exited"
    assert t.state is ThreadState.EXITED
    assert t.total_runtime == msec(5)
    assert eng.now == msec(5)


def test_sleep_then_run_accounting():
    eng = make_engine()

    def behavior(ctx):
        yield Run(msec(2))
        yield Sleep(msec(10))
        yield Run(msec(3))

    t = eng.spawn(ThreadSpec("sleeper", behavior))
    eng.run(until=sec(1))
    assert t.total_runtime == msec(5)
    assert t.total_sleeptime == msec(10)
    assert eng.now == msec(15)


def test_two_threads_share_core():
    eng = make_engine()
    a = eng.spawn(ThreadSpec("a", compute(msec(30))))
    b = eng.spawn(ThreadSpec("b", compute(msec(30))))
    eng.run(until=sec(1))
    assert a.has_exited and b.has_exited
    # Total work is 60 ms on one core.
    assert eng.now == msec(60)
    # Round-robin means both made progress: neither finished before the
    # other's work could have run entirely serially.
    assert max(a.exited_at, b.exited_at) == msec(60)
    assert min(a.exited_at, b.exited_at) >= msec(30)


def test_threads_run_in_parallel_on_two_cores():
    eng = make_engine(ncpus=2)
    a = eng.spawn(ThreadSpec("a", compute(msec(30))))
    b = eng.spawn(ThreadSpec("b", compute(msec(30))))
    eng.run(until=sec(1))
    assert eng.now == msec(30)
    assert a.exited_at == b.exited_at == msec(30)


def test_fork_child_runs():
    eng = make_engine(ncpus=2)
    children = []

    def parent(ctx):
        yield Run(msec(1))
        child = yield Fork(ThreadSpec("child", compute(msec(2))))
        children.append(child)
        yield Run(msec(1))

    eng.spawn(ThreadSpec("parent", parent))
    eng.run(until=sec(1))
    assert len(children) == 1
    assert children[0].has_exited
    assert children[0].parent.name == "parent"
    assert children[0].total_runtime == msec(2)


def test_spawn_at_future_time():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("late", compute(msec(1))), at=msec(50))
    eng.run(until=sec(1))
    assert t.created_at == msec(50)
    assert t.exited_at == msec(51)


def test_run_forever_never_exits():
    eng = make_engine()

    def spin(ctx):
        yield run_forever()

    t = eng.spawn(ThreadSpec("spin", spin))
    reason = eng.run(until=msec(100))
    assert reason == "deadline"
    assert t.is_running
    assert t.total_runtime == msec(100)


def test_yield_rotates_between_threads():
    eng = make_engine()
    order = []

    def nice_guy(ctx):
        for _ in range(3):
            yield Run(msec(1))
            order.append(ctx.thread.name)
            yield Yield()

    eng.spawn(ThreadSpec("y1", nice_guy))
    eng.spawn(ThreadSpec("y2", nice_guy))
    eng.run(until=sec(1))
    # Yield lets the other thread in between each 1 ms chunk.
    assert order == ["y1", "y2", "y1", "y2", "y1", "y2"]


def test_affinity_restricts_placement():
    eng = make_engine(ncpus=4)
    t = eng.spawn(ThreadSpec("pinned", compute(msec(5)),
                             affinity=frozenset({2})))
    eng.run(until=sec(1))
    assert t.cpu == 2


def test_set_affinity_narrowing_moves_running_thread():
    eng = make_engine(ncpus=2)

    def spin(ctx):
        yield run_forever()

    t = eng.spawn(ThreadSpec("spin", spin, affinity=frozenset({0})))
    eng.run(until=msec(5))
    assert t.cpu == 0
    eng.set_affinity(t, {1})
    eng.run(until=msec(10))
    assert t.cpu == 1
    assert t.is_running


def test_set_affinity_widening_does_not_move():
    eng = make_engine(ncpus=2)

    def spin(ctx):
        yield run_forever()

    a = eng.spawn(ThreadSpec("a", spin, affinity=frozenset({0})))
    b = eng.spawn(ThreadSpec("b", spin, affinity=frozenset({0})))
    eng.run(until=msec(5))
    eng.set_affinity(a, None)
    eng.set_affinity(b, None)
    # Widening alone moves nothing; only balancing would.  FIFO steals
    # on idle, so after some time one thread is stolen by cpu 1.
    eng.run(until=msec(100))
    cpus = {a.cpu, b.cpu}
    assert cpus == {0, 1}


def test_stop_when_condition():
    eng = make_engine()
    eng.spawn(ThreadSpec("spin", lambda ctx: iter([run_forever()])))
    reason = eng.run(until=sec(10),
                     stop_when=lambda e: e.now >= msec(50),
                     check_interval=1)
    assert reason == "condition"
    assert eng.now < sec(10)


def test_engine_stop_from_callback():
    eng = make_engine()
    eng.spawn(ThreadSpec("spin", lambda ctx: iter([run_forever()])))
    eng.events.post(msec(7), eng.stop, "bailed")
    assert eng.run(until=sec(1)) == "bailed"
    assert eng.now == msec(7)


def test_migrate_running_thread_rejected():
    eng = make_engine(ncpus=2)

    def spin(ctx):
        yield run_forever()

    t = eng.spawn(ThreadSpec("spin", spin))
    eng.run(until=msec(1))
    assert t.is_running
    with pytest.raises(ThreadStateError):
        eng.migrate_thread(t, 1)


def test_wait_time_accounted():
    eng = make_engine()
    a = eng.spawn(ThreadSpec("a", compute(msec(20))))
    b = eng.spawn(ThreadSpec("b", compute(msec(20))))
    eng.run(until=sec(1))
    # One core, 40 ms of work: both threads waited while the other ran.
    assert a.total_waittime + b.total_waittime > 0
    assert a.total_runtime == b.total_runtime == msec(20)


def test_metrics_switch_counter():
    eng = make_engine()
    eng.spawn(ThreadSpec("a", compute(msec(5))))
    eng.spawn(ThreadSpec("b", compute(msec(5))))
    eng.run(until=sec(1))
    assert eng.metrics.counter("engine.switches") >= 2
    assert eng.metrics.counter("engine.exits") == 2


def test_exited_threads_stay_dead():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("a", compute(msec(1))))
    eng.run(until=sec(1))
    # waking an exited thread is a no-op
    eng.wake_thread(t)
    assert t.has_exited


def test_charge_overhead_delays_completion():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("a", compute(msec(10))))
    eng.events.post(msec(2), eng.charge_overhead, 0, msec(3))
    eng.run(until=sec(1))
    assert t.exited_at == msec(13)
    assert eng.machine.cores[0].sched_overhead_ns == msec(3)
