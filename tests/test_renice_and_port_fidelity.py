"""Tests for dynamic renicing and the §3 port-fidelity rules."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec
from repro.core.errors import ThreadStateError
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory


def spin(ctx):
    yield run_forever()


def make_engine(sched, ncpus=1):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory(sched), seed=61)


# ----------------------------------------------------------------- renice

def test_renice_shifts_cfs_share():
    eng = make_engine("cfs")
    a = eng.spawn(ThreadSpec("a", spin, app="app"))
    b = eng.spawn(ThreadSpec("b", spin, app="app"))
    eng.run(until=sec(2))
    # equal so far
    assert a.total_runtime == pytest.approx(b.total_runtime, rel=0.15)
    base_a = a.total_runtime
    base_b = b.total_runtime
    eng.set_nice(b, 10)
    eng.run(until=sec(6))
    gain_a = a.total_runtime - base_a
    gain_b = b.total_runtime - base_b
    # weight(0)/weight(10) ~ 9.3
    assert gain_a / gain_b > 4.0


def test_renice_flips_ule_classification():
    """A mildly-sleeping thread near the threshold flips between
    interactive and batch purely via nice (score = penalty + nice)."""
    eng = make_engine("ule", ncpus=2)

    def duty(ctx):
        while True:
            yield Run(msec(2))
            yield Sleep(msec(3))

    # neutral starting history (no inherited bash sleep credit)
    t = eng.spawn(ThreadSpec("d", duty, affinity=frozenset({1}),
                             tags={"ule_history": (sec(1), sec(1))}))
    eng.run(until=sec(8))
    # penalty settles toward 50*r/s = ~33: batch at nice 0
    assert not t.policy.interactive
    eng.set_nice(t, -10)
    eng.run(until=sec(7))
    assert t.policy.interactive


def test_renice_rejects_bad_values():
    eng = make_engine("cfs")
    t = eng.spawn(ThreadSpec("a", spin))
    with pytest.raises(ValueError):
        eng.set_nice(t, 42)


def test_renice_exited_thread_rejected():
    eng = make_engine("cfs")
    t = eng.spawn(ThreadSpec("a", lambda ctx: iter([Run(msec(1))])))
    eng.run(until=sec(1))
    with pytest.raises(ThreadStateError):
        eng.set_nice(t, 5)


def test_renice_queued_thread_requeues_consistently():
    eng = make_engine("ule")
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin)) for i in range(3)]
    eng.run(until=msec(100))
    queued = [t for t in ts if not t.is_running]
    eng.set_nice(queued[0], 15)
    # structural consistency after the requeue
    core = eng.machine.cores[0]
    names = sorted(t.name for t in eng.scheduler.runnable_threads(core))
    assert names == sorted(t.name for t in ts)
    eng.run(until=sec(2))  # still scheduleable
    assert all(t.total_runtime > 0 for t in ts)


# ----------------------------------------------------- §3 port fidelity

@pytest.mark.parametrize("sched", ["cfs", "ule"])
def test_running_thread_counted_on_runqueue(sched):
    """The port keeps the running thread in the runqueue: it must be
    visible to introspection and counted in nr_runnable."""
    eng = make_engine(sched)
    t = eng.spawn(ThreadSpec("solo", spin))
    eng.run(until=msec(50))
    core = eng.machine.cores[0]
    assert t.is_running
    assert eng.scheduler.nr_runnable(core) == 1
    assert t in list(eng.scheduler.runnable_threads(core))


@pytest.mark.parametrize("sched", ["cfs", "ule"])
def test_balancers_never_migrate_running_threads(sched):
    """§3: 'we had to slightly change the ULE load balancing to avoid
    migrating a currently running thread' (CFS does the same)."""
    eng = make_engine(sched, ncpus=4)
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin,
                               affinity=frozenset({0})))
          for i in range(10)]
    eng.run(until=msec(50))
    bad = []
    eng.tracer.on_migrate.append(
        lambda t, src, dst: bad.append(t) if t.is_running else None)
    for t in ts:
        eng.set_affinity(t, None)
    eng.run(until=sec(10))
    assert not bad


def test_ule_priority_scaling_stays_in_band():
    """§3: ULE's penalty scores are scaled into the scheduler's
    priority range; no computed priority may leave the band."""
    from repro.ule.interactivity import SleepRunHistory
    from repro.ule.params import UleTunables
    from repro.ule.priority import compute_priority
    tun = UleTunables()
    for run in range(0, 10**10, 10**9):
        for sleep in range(0, 10**10, 10**9):
            for nice in (-20, 0, 19):
                hist = SleepRunHistory(tun, run, sleep)
                pri, interactive = compute_priority(tun, hist, nice)
                assert 0 <= pri < tun.nqueues
                if interactive:
                    assert pri <= tun.interact_prio_max
                else:
                    assert pri >= tun.batch_prio_min
