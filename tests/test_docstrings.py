"""Meta-test: every public module, class, and function in the library
carries a docstring (deliverable: doc comments on every public item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.core", "repro.sched", "repro.cfs",
            "repro.ule", "repro.sync", "repro.workloads",
            "repro.analysis", "repro.tracing", "repro.experiments"]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.ispkg or info.name == "__main__":
                continue  # __main__ runs the CLI on import
            yield importlib.import_module(
                f"{package_name}.{info.name}")


def is_public(name: str) -> bool:
    return not name.startswith("_")


def test_every_module_has_docstring():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if not is_public(name):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
                continue
            if inspect.isclass(obj):
                for mname, meth in vars(obj).items():
                    if not is_public(mname):
                        continue
                    if inspect.isfunction(meth) \
                            and not inspect.getdoc(meth):
                        missing.append(
                            f"{module.__name__}.{name}.{mname}")
    assert not missing, \
        f"{len(missing)} public items without docstrings: " \
        f"{missing[:20]}..."
