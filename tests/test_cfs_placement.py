"""Unit tests for CFS wake placement heuristics."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec
from repro.core.topology import smp
from repro.cfs.placement import record_wakee, wake_wide
from repro.sched import scheduler_factory
from repro.sync import Channel


def make_engine(ncpus=4):
    return Engine(smp(ncpus), scheduler_factory("cfs"), seed=13)


def spin(ctx):
    yield run_forever()


class FakeState:
    def __init__(self):
        self.last_wakee = None
        self.wakee_flips = 0
        self.wakee_flip_ts = 0


def test_record_wakee_counts_distinct_wakees():
    state = FakeState()
    a, b = object(), object()
    record_wakee(state, a, now=0)
    record_wakee(state, a, now=1)  # same wakee: no flip
    record_wakee(state, b, now=2)
    record_wakee(state, a, now=3)
    assert state.wakee_flips == 3


def test_record_wakee_decays_every_second():
    state = FakeState()
    wakees = [object() for _ in range(8)]
    for i, w in enumerate(wakees):
        record_wakee(state, w, now=i)
    flips_before = state.wakee_flips
    record_wakee(state, object(), now=2 * 10**9)
    assert state.wakee_flips <= flips_before // 2 + 1


def test_wake_wide_detects_one_to_many():
    """A dispatcher that wakes many distinct workers goes 'wide'."""
    eng = make_engine(ncpus=4)
    chan = Channel(eng)
    n = 12

    def dispatcher(ctx):
        for round_ in range(20):
            yield Sleep(msec(2))
            for _ in range(n):
                yield chan.put(round_)

    def worker(ctx):
        while True:
            item = yield chan.get()
            yield Run(msec(1))

    disp = eng.spawn(ThreadSpec("disp", dispatcher, app="svc"))
    workers = [eng.spawn(ThreadSpec(f"w{i}", worker, app="svc"))
               for i in range(n)]
    eng.run(until=sec(1))
    # the dispatcher accumulated wakee flips well above the LLC size
    state = eng.scheduler.state_of(disp)
    assert state.wakee_flips > 4
    # and its wakees were spread across the machine
    used_cpus = {w.cpu for w in workers}
    assert len(used_cpus) >= 3


def test_wake_wide_formula():
    """The kernel's rule: wide only when the *slave* also flips at
    least factor times and master >= slave * factor."""
    eng = make_engine(ncpus=4)  # one LLC of 4 -> factor 4
    sched = eng.scheduler
    master = eng.spawn(ThreadSpec("m", spin))
    slave = eng.spawn(ThreadSpec("s", spin))
    eng.run(until=msec(1))
    ms, ss = sched.state_of(master), sched.state_of(slave)
    ms.wakee_flips, ss.wakee_flips = 40, 5
    assert wake_wide(sched, master, slave)
    ms.wakee_flips, ss.wakee_flips = 40, 2  # slave below factor
    assert not wake_wide(sched, master, slave)
    ms.wakee_flips, ss.wakee_flips = 10, 5  # master < slave * factor
    assert not wake_wide(sched, master, slave)


def test_one_to_one_stays_affine():
    """A ping-pong pair is kept close (not spread machine-wide)."""
    eng = make_engine(ncpus=4)
    a2b, b2a = Channel(eng), Channel(eng)

    def ping(ctx):
        for i in range(200):
            yield a2b.put(i)
            yield b2a.get()
            yield Run(msec(1))

    def pong(ctx):
        for _ in range(200):
            yield a2b.get()
            yield Run(msec(1))
            yield b2a.put(None)

    a = eng.spawn(ThreadSpec("ping", ping, app="pp"))
    b = eng.spawn(ThreadSpec("pong", pong, app="pp"))
    eng.run(until=sec(2))
    sa = eng.scheduler.state_of(a)
    sb = eng.scheduler.state_of(b)
    # each always wakes the same partner: flips stay at 1
    assert sa.wakee_flips <= 1
    assert sb.wakee_flips <= 1
    assert not wake_wide(eng.scheduler, a, b)
    # pair migrated rarely (placement kept them on their CPUs)
    assert a.nr_migrations + b.nr_migrations <= 4


def test_fork_spreads_to_idle_cpus():
    eng = make_engine(ncpus=4)
    ts = [eng.spawn(ThreadSpec(f"s{i}", spin)) for i in range(4)]
    eng.run(until=msec(100))
    assert {t.cpu for t in ts} == {0, 1, 2, 3}
