"""Golden-trace regression store: the recorded digests are complete,
reproducible, stable across serial/parallel fan-out, and actually
sensitive to schedule changes.

Re-record after an intentional behavioural change with `make golden`.
"""

import json

from repro.testing import generate_scenario, run_scenario
from repro.testing.golden import (FIG5_APPS, GOLDEN_FILE,
                                  GOLDEN_SCHEDULERS, ZOO_GOLDEN_SCHEDULERS,
                                  cell_names, check, compute_all, load)
from repro.tracing.digest import schedule_digest, state_digest


def test_store_is_recorded_and_complete():
    assert GOLDEN_FILE.exists(), "run 'make golden' to create the store"
    recorded = load()
    assert sorted(recorded) == sorted(cell_names())
    for sched in GOLDEN_SCHEDULERS:
        assert f"fig1/{sched}" in recorded
        assert f"fig6/{sched}" in recorded
        for app in FIG5_APPS:
            assert f"fig5/{app}/{sched}" in recorded
    for sched in ZOO_GOLDEN_SCHEDULERS:
        assert f"fig1/{sched}" in recorded
    # digests are compact fixed-width hex
    assert all(len(d) == 16 and int(d, 16) >= 0
               for d in recorded.values())


def test_store_file_is_canonical_json():
    text = GOLDEN_FILE.read_text()
    assert text == json.dumps(load(), indent=2, sort_keys=True) + "\n"


def test_all_golden_digests_match():
    """The tier-1 gate: every recorded cell reproduces bit-identically."""
    assert check() == []


def test_fig5_cells_stable_serial_vs_parallel():
    names = [f"fig5/{app}/{sched}" for app in FIG5_APPS
             for sched in GOLDEN_SCHEDULERS]
    serial = compute_all(jobs=None, names=names)
    fanned = compute_all(jobs=2, names=names)
    assert serial == fanned


def test_zoo_cells_stable_serial_vs_parallel():
    """Zoo digests must not depend on the worker fan-out — the lottery
    policy's RNG is engine-seeded, never process-global."""
    names = [f"fig1/{sched}" for sched in ZOO_GOLDEN_SCHEDULERS]
    serial = compute_all(jobs=None, names=names)
    fanned = compute_all(jobs=2, names=names)
    assert serial == fanned
    assert serial == {name: load()[name] for name in names}


def test_digest_ignores_process_global_thread_ids():
    """Thread tids are a process-global counter; running the same
    scenario twice in one process must still digest identically."""
    scenario = generate_scenario(4)
    a, _, _ = run_scenario(scenario, "cfs")
    b, _, _ = run_scenario(scenario, "cfs")
    assert schedule_digest(a) == schedule_digest(b)


def test_digest_is_sensitive_to_the_schedule():
    scenario = generate_scenario(4)
    base, _, _ = run_scenario(scenario, "cfs")
    other, _, _ = run_scenario(generate_scenario(6), "cfs")
    assert schedule_digest(base) != schedule_digest(other)
    # and to single-field changes in the canonical state
    state = base.canonical_state()
    reference = state_digest(state)
    state["now"] += 1
    assert state_digest(state) != reference


def test_experiment_entry_points_emit_digests():
    from repro.experiments.fig5_single_core_perf import run_app
    out = run_app("MG", "cfs", seed=1)
    assert out["digest"] == load()["fig5/MG/cfs"]
