"""Tests for synchronization primitives, driven through the engine."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec
from repro.core.errors import SimulationError
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory
from repro.sync import (Barrier, CascadingBarrier, Channel, CondVar, Mutex,
                        OneShotEvent, Pipe, Semaphore)


def make_engine(ncpus=1):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory("fifo"))


# ---------------------------------------------------------------- mutex

def test_mutex_mutual_exclusion():
    eng = make_engine(ncpus=2)
    mutex = Mutex(eng)
    in_critical = []
    overlaps = []

    def worker(ctx):
        for _ in range(5):
            yield mutex.acquire()
            in_critical.append(ctx.thread.name)
            if len(in_critical) > 1:
                overlaps.append(tuple(in_critical))
            yield Run(msec(1))
            in_critical.remove(ctx.thread.name)
            yield mutex.release()
            yield Run(msec(1))

    eng.spawn(ThreadSpec("m1", worker))
    eng.spawn(ThreadSpec("m2", worker))
    eng.run(until=sec(1))
    assert not overlaps
    assert mutex.acquisitions == 10
    assert mutex.contentions > 0


def test_mutex_fifo_handoff():
    eng = make_engine(ncpus=4)
    mutex = Mutex(eng)
    order = []

    def holder(ctx):
        yield mutex.acquire()
        yield Run(msec(10))
        yield mutex.release()

    def waiter(ctx):
        yield Sleep(msec(ctx.thread.tags["delay"]))
        yield mutex.acquire()
        order.append(ctx.thread.name)
        yield mutex.release()

    eng.spawn(ThreadSpec("holder", holder))
    eng.spawn(ThreadSpec("w1", waiter, tags={"delay": 1}))
    eng.spawn(ThreadSpec("w2", waiter, tags={"delay": 2}))
    eng.spawn(ThreadSpec("w3", waiter, tags={"delay": 3}))
    eng.run(until=sec(1))
    assert order == ["w1", "w2", "w3"]


def test_mutex_release_by_non_owner_raises():
    eng = make_engine()
    mutex = Mutex(eng)

    def bad(ctx):
        yield mutex.release()

    eng.spawn(ThreadSpec("bad", bad))
    with pytest.raises(SimulationError):
        eng.run(until=sec(1))


# ---------------------------------------------------------------- semaphore

def test_semaphore_counts():
    eng = make_engine(ncpus=2)
    sem = Semaphore(eng, value=2)
    concurrent = [0]
    peak = [0]

    def worker(ctx):
        yield sem.down()
        concurrent[0] += 1
        peak[0] = max(peak[0], concurrent[0])
        yield Run(msec(2))
        concurrent[0] -= 1
        yield sem.up()

    for i in range(6):
        eng.spawn(ThreadSpec(f"s{i}", worker))
    eng.run(until=sec(1))
    assert peak[0] <= 2
    assert sem.value == 2


def test_oneshot_event_latches():
    eng = make_engine(ncpus=2)
    event = OneShotEvent(eng)
    log = []

    def waiter(ctx):
        yield event.wait()
        log.append(("woke", ctx.now))

    def setter(ctx):
        yield Run(msec(5))
        yield event.fire()
        log.append(("set", ctx.now))

    def late(ctx):
        yield Sleep(msec(20))
        yield event.wait()  # already set: immediate
        log.append(("late", ctx.now))

    eng.spawn(ThreadSpec("w", waiter))
    eng.spawn(ThreadSpec("s", setter))
    eng.spawn(ThreadSpec("l", late))
    eng.run(until=sec(1))
    times = dict((k, v) for k, v in log)
    assert times["woke"] >= times["set"]
    assert times["late"] == msec(20)


# ---------------------------------------------------------------- pipe

def test_pipe_transfers_messages_in_order():
    eng = make_engine(ncpus=2)
    pipe = Pipe(eng, capacity=4)
    received = []

    def producer(ctx):
        for i in range(10):
            yield Run(msec(1))
            yield pipe.write(i)

    def consumer(ctx):
        for _ in range(10):
            msg = yield pipe.read()
            received.append(msg)
            yield Run(msec(1))

    eng.spawn(ThreadSpec("prod", producer))
    eng.spawn(ThreadSpec("cons", consumer))
    eng.run(until=sec(1))
    assert received == list(range(10))
    assert pipe.messages_written == pipe.messages_read == 10


def test_pipe_blocks_writer_when_full():
    eng = make_engine(ncpus=2)
    pipe = Pipe(eng, capacity=2)
    progress = []

    def producer(ctx):
        for i in range(4):
            yield pipe.write(i)
            progress.append((i, ctx.now))

    def consumer(ctx):
        yield Sleep(msec(50))
        for _ in range(4):
            yield pipe.read()

    eng.spawn(ThreadSpec("prod", producer))
    eng.spawn(ThreadSpec("cons", consumer))
    eng.run(until=sec(1))
    # first two writes immediate, third blocked until consumer ran
    assert progress[0][1] == 0
    assert progress[1][1] == 0
    assert progress[2][1] >= msec(50)


def test_pipe_blocked_reader_gets_message():
    eng = make_engine(ncpus=2)
    pipe = Pipe(eng)
    got = []

    def consumer(ctx):
        msg = yield pipe.read()
        got.append((msg, ctx.now))

    def producer(ctx):
        yield Sleep(msec(10))
        yield pipe.write("hello")

    eng.spawn(ThreadSpec("cons", consumer))
    eng.spawn(ThreadSpec("prod", producer))
    eng.run(until=sec(1))
    assert got == [("hello", msec(10))]


# ---------------------------------------------------------------- barrier

def test_barrier_releases_all_at_once():
    eng = make_engine(ncpus=4)
    barrier = Barrier(eng, parties=4)
    release_times = []

    def worker(ctx):
        yield Sleep(msec(ctx.thread.tags["delay"]))
        yield from barrier.wait()
        release_times.append(ctx.now)

    for i, delay in enumerate([1, 5, 9, 13]):
        eng.spawn(ThreadSpec(f"b{i}", worker, tags={"delay": delay}))
    eng.run(until=sec(1))
    assert len(release_times) == 4
    assert all(t == msec(13) for t in release_times)


def test_barrier_is_reusable():
    eng = make_engine(ncpus=2)
    barrier = Barrier(eng, parties=2)
    phases = []

    def worker(ctx):
        for phase in range(3):
            yield Run(msec(1))
            yield from barrier.wait()
            phases.append((ctx.thread.name, phase, ctx.now))

    eng.spawn(ThreadSpec("r1", worker))
    eng.spawn(ThreadSpec("r2", worker))
    eng.run(until=sec(1))
    assert len(phases) == 6
    assert barrier.generation == 3


def test_spin_barrier_burns_cpu_before_blocking():
    eng = make_engine(ncpus=2)
    barrier = Barrier(eng, parties=2, spin_ns=msec(10))

    def early(ctx):
        yield from barrier.wait()

    def late(ctx):
        yield Run(msec(3))
        yield from barrier.wait()

    a = eng.spawn(ThreadSpec("early", early))
    b = eng.spawn(ThreadSpec("late", late))
    eng.run(until=sec(1))
    # The early thread spun on-CPU until release, never sleeping.
    assert a.total_sleeptime == 0
    assert a.total_runtime >= msec(3)
    assert a.total_runtime <= msec(10)


def test_cascading_barrier_wakes_serially():
    eng = make_engine(ncpus=1)
    n = 5
    cascade = CascadingBarrier(eng, parties=n)
    wake_order = []

    def worker(ctx):
        i = ctx.thread.tags["index"]
        yield Run(msec(1))
        yield from cascade.wait(i)
        wake_order.append(i)
        yield Run(msec(2))

    for i in range(n):
        eng.spawn(ThreadSpec(f"c{i}", worker, tags={"index": i}))
    eng.run(until=sec(1))
    assert sorted(wake_order) == list(range(n))
    assert len(cascade.wake_times) == n
    # Chain is serial: each wake is strictly later than the previous
    # party's, except the releaser (who never slept).
    rel = cascade._release_index
    chained = [cascade.wake_times[i] for i in range(n) if i != rel]
    assert chained == sorted(chained)


# ---------------------------------------------------------------- condvar

def test_condvar_signal_wakes_with_mutex_held():
    eng = make_engine(ncpus=2)
    mutex = Mutex(eng)
    cond = CondVar(eng)
    state = {"ready": False}
    observed = []

    def waiter(ctx):
        yield mutex.acquire()
        while not state["ready"]:
            yield cond.wait(mutex)
        observed.append(mutex.owner is ctx.thread)
        yield mutex.release()

    def signaller(ctx):
        yield Sleep(msec(5))
        yield mutex.acquire()
        state["ready"] = True
        yield cond.signal()
        yield mutex.release()

    eng.spawn(ThreadSpec("waiter", waiter))
    eng.spawn(ThreadSpec("sig", signaller))
    eng.run(until=sec(1))
    assert observed == [True]


def test_condvar_broadcast_wakes_all():
    eng = make_engine(ncpus=4)
    mutex = Mutex(eng)
    cond = CondVar(eng)
    woken = []

    def waiter(ctx):
        yield mutex.acquire()
        yield cond.wait(mutex)
        woken.append(ctx.thread.name)
        yield mutex.release()

    def caster(ctx):
        yield Sleep(msec(10))
        yield mutex.acquire()
        yield cond.broadcast()
        yield mutex.release()

    for i in range(3):
        eng.spawn(ThreadSpec(f"cv{i}", waiter))
    eng.spawn(ThreadSpec("cast", caster))
    eng.run(until=sec(1))
    assert sorted(woken) == ["cv0", "cv1", "cv2"]


# ---------------------------------------------------------------- channel

def test_channel_closed_loop():
    eng = make_engine(ncpus=2)
    requests = Channel(eng, "req")
    replies = Channel(eng, "rep")
    served = []

    def client(ctx):
        for i in range(5):
            yield requests.put(i)
            reply = yield replies.get()
            served.append(reply)

    def server(ctx):
        while True:
            req = yield requests.get()
            yield Run(msec(1))
            yield replies.put(req * 10)

    eng.spawn(ThreadSpec("client", client))
    eng.spawn(ThreadSpec("server", server))
    eng.run(until=sec(1), stop_when=lambda e: len(served) == 5,
            check_interval=1)
    assert served == [0, 10, 20, 30, 40]
    assert requests.puts == 5


def test_channel_put_wakes_one_getter():
    eng = make_engine(ncpus=4)
    chan = Channel(eng)
    got = []

    def getter(ctx):
        msg = yield chan.get()
        got.append((ctx.thread.name, msg))

    def putter(ctx):
        yield Sleep(msec(5))
        yield chan.put("x")

    eng.spawn(ThreadSpec("g1", getter))
    eng.spawn(ThreadSpec("g2", getter))
    eng.spawn(ThreadSpec("p", putter))
    eng.run(until=msec(100))
    # only one getter got the message; FIFO -> g1
    assert got == [("g1", "x")]
