"""Meta-tests over the experiment registry and figure coverage."""

import importlib
import inspect

import pytest

from repro.experiments import EXPERIMENTS, experiment_claim
from repro.workloads.registry import (ALL_WORKLOADS, FIGURE5_APPS,
                                      FIGURE8_EXTRA)


def test_every_experiment_has_claim_and_run():
    for name, (module_name, description) in EXPERIMENTS.items():
        module = importlib.import_module(
            f"repro.experiments.{module_name}")
        assert isinstance(module.CLAIM, str) and module.CLAIM
        sig = inspect.signature(module.run)
        assert "quick" in sig.parameters
        assert "seed" in sig.parameters
        assert description


def test_experiment_claims_accessible():
    assert "starv" in experiment_claim("fig1") or \
        "starve" in experiment_claim("fig1")


def test_paper_tables_and_figures_all_covered():
    """The paper's evaluation has 2 tables and 9 figures; each must
    have an experiment driver AND a benchmark."""
    import pathlib
    bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
    bench_files = {p.stem for p in bench_dir.glob("test_*.py")}
    coverage = {
        "table1": "test_table1_api",
        "table2": "test_table2_fibo_sysbench",
        "fig1": "test_fig1_cumulative_runtime",
        "fig2": "test_fig2_penalty",
        "fig3": "test_fig3_sysbench_threads",
        "fig4": "test_fig4_penalty_single_app",
        "fig5": "test_fig5_single_core",
        "fig6": "test_fig6_load_balancing",
        "fig7": "test_fig7_cray_placement",
        "fig8": "test_fig8_multicore",
        "fig9": "test_fig9_multi_app",
    }
    for exp, bench in coverage.items():
        assert exp in EXPERIMENTS, f"no driver for {exp}"
        assert bench in bench_files, f"no benchmark for {exp}"


def test_figure5_app_list_matches_paper_x_axis():
    """The registry carries every bar of the paper's Fig. 5: 18
    Phoronix bars, 10 NAS kernels, 2 databases, 12 PARSEC apps."""
    names = list(FIGURE5_APPS)
    phoronix = [n for n in names if n in (
        "Build-apache", "Build-php", "7zip", "Gzip", "C-Ray", "DCraw",
        "himeno", "hmmer", "Apache")
        or n.startswith(("scimark2", "john"))]
    nas = [n for n in names if n in
           ("BT", "CG", "DC", "EP", "FT", "IS", "LU", "MG", "SP", "UA")]
    dbs = [n for n in names if n in ("Sysbench", "Rocksdb")]
    parsec = [n for n in names
              if n not in phoronix + nas + dbs]
    assert len(phoronix) == 18
    assert len(nas) == 10
    assert len(dbs) == 2
    assert len(parsec) == 12
    assert len(names) == 42


def test_figure8_adds_hackbench():
    assert set(FIGURE8_EXTRA) == {"Hackb-800", "Hackb-10"}


def test_all_workload_factories_are_callable_and_fresh():
    made = {}
    for name, factory in ALL_WORKLOADS.items():
        wl = factory()
        assert wl.name
        # factories return fresh instances (workloads are single-use)
        assert factory() is not wl
        made[name] = wl


def test_quick_app_subsets_are_valid():
    from repro.experiments.fig5_single_core_perf import \
        QUICK_APPS as Q5
    from repro.experiments.fig8_multicore_perf import QUICK_APPS as Q8
    for name in Q5:
        assert name in FIGURE5_APPS
    for name in Q8:
        assert name in FIGURE5_APPS or name in FIGURE8_EXTRA
