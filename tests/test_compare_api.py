"""Tests for the compare_schedulers API and a sync-fuzz hardening
pass."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compare_schedulers
from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec, usec
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.workloads.base import ComputeWorkload


def small_compute():
    return ComputeWorkload(app="cw", nthreads=4, work_ns=msec(20),
                           chunk_ns=msec(5))


def test_compare_runs_both_schedulers():
    out = compare_schedulers(small_compute, ncpus=2,
                             timeout_ns=sec(60))
    assert set(out.runs) == {"cfs", "ule"}
    assert out.runs["cfs"].performance > 0
    assert out.winner in ("cfs", "ule")
    assert "ULE is" in out.summary()


def test_compare_custom_scheduler_list():
    out = compare_schedulers(small_compute, schedulers=("fifo",),
                             ncpus=2, timeout_ns=sec(60))
    assert set(out.runs) == {"fifo"}
    with pytest.raises(KeyError):
        _ = out.diff_pct  # needs both cfs and ule


def test_compare_scheduler_options_forwarded():
    out = compare_schedulers(
        small_compute, ncpus=2, timeout_ns=sec(60),
        scheduler_options={"ule": {"pickcpu_scan_cost_ns": usec(5)}})
    # scans were charged only on the ULE run
    assert out.runs["ule"].overhead_pct >= 0.0
    assert out.runs["cfs"].overhead_pct == 0.0


def test_compare_deterministic():
    a = compare_schedulers(small_compute, ncpus=2, timeout_ns=sec(60))
    b = compare_schedulers(small_compute, ncpus=2, timeout_ns=sec(60))
    assert a.runs["ule"].performance == b.runs["ule"].performance
    assert a.runs["cfs"].switches == b.runs["cfs"].switches


# ----------------------------------------------------------- sync fuzz

@pytest.mark.parametrize("sched", ["cfs", "ule"])
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_fuzz_sync_workloads_conserve_work(sched, data):
    """Random mixtures of compute, sleep, and well-paired lock usage
    never crash any scheduler, always complete, and conserve work."""
    from repro.sync import Mutex, Semaphore

    nthreads = data.draw(st.integers(2, 6))
    ncpus = data.draw(st.sampled_from([1, 2, 4]))
    engine = Engine(smp(ncpus), scheduler_factory(sched),
                    seed=data.draw(st.integers(0, 99)))
    mutex = Mutex(engine)
    sem = Semaphore(engine, value=data.draw(st.integers(1, 3)))
    plans = []
    for i in range(nthreads):
        steps = data.draw(st.lists(
            st.tuples(st.sampled_from(["run", "sleep", "lock", "sem"]),
                      st.integers(1, 5)),
            min_size=1, max_size=5))
        plans.append(steps)

    def behavior_for(steps):
        def behavior(ctx):
            for kind, amount in steps:
                if kind == "run":
                    yield Run(msec(amount))
                elif kind == "sleep":
                    yield Sleep(msec(amount))
                elif kind == "lock":
                    yield mutex.acquire()
                    yield Run(msec(amount))
                    yield mutex.release()
                else:
                    yield sem.down()
                    yield Run(msec(amount))
                    yield sem.up()
        return behavior

    threads = [engine.spawn(ThreadSpec(f"f{i}", behavior_for(p)))
               for i, p in enumerate(plans)]
    reason = engine.run(until=sec(60))
    assert reason == "all-exited"
    for thread, steps in zip(threads, plans):
        want = sum(msec(a) for k, a in steps if k != "sleep")
        assert thread.total_runtime == want
    for core in engine.machine.cores:
        core.account_to_now()
    assert sum(c.busy_ns for c in engine.machine.cores) == \
        sum(t.total_runtime for t in threads)
    assert mutex.owner is None
