"""The content-addressed cell cache: keying, hit/miss accounting,
fingerprint invalidation + GC, torn-entry tolerance, env-var
construction, and the interplay with cell_map / checkpoints."""

import json
import warnings

import pytest

from repro.experiments import parallel
from repro.experiments.cellcache import (CellCache, cache_from_env,
                                         cache_key, code_fingerprint)

CELL = {"experiment": "table1", "quick": True, "seed": 1}


@pytest.fixture
def cache(tmp_path):
    return CellCache(tmp_path / "cache", fingerprint="fp-a")


# ----------------------------------------------------------------------
# keying
# ----------------------------------------------------------------------

def test_key_ignores_dict_ordering():
    a = {"x": 1, "y": 2}
    b = {"y": 2, "x": 1}
    assert cache_key(a, "fp") == cache_key(b, "fp")


def test_key_depends_on_cell_and_fingerprint():
    assert cache_key({"x": 1}, "fp") != cache_key({"x": 2}, "fp")
    assert cache_key({"x": 1}, "fp") != cache_key({"x": 1}, "fp2")


def test_code_fingerprint_is_memoized():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


# ----------------------------------------------------------------------
# get / put
# ----------------------------------------------------------------------

def test_miss_then_hit(cache):
    assert cache.get(CELL) is CellCache.MISS
    cache.put(CELL, {"metric": 42})
    assert cache.get(CELL) == {"metric": 42}
    assert (cache.hits, cache.misses) == (1, 1)


def test_cached_none_is_not_a_miss(cache):
    cache.put(CELL, None)
    assert cache.get(CELL) is None
    assert cache.hits == 1


def test_torn_entry_counts_as_miss(cache):
    cache.put(CELL, {"metric": 42})
    cache.path_for(CELL).write_text('{"format": "repro-cell-')
    with pytest.warns(RuntimeWarning, match="truncated"):
        assert cache.get(CELL) is CellCache.MISS


def test_wrong_fingerprint_entry_is_a_miss(tmp_path):
    old = CellCache(tmp_path / "cache", fingerprint="fp-old")
    old.put(CELL, {"metric": 42})
    new = CellCache(tmp_path / "cache", fingerprint="fp-new")
    assert new.get(CELL) is CellCache.MISS


def test_put_gcs_stale_generations(tmp_path):
    old = CellCache(tmp_path / "cache", fingerprint="fp-old")
    old.put(CELL, {"metric": 1})
    new = CellCache(tmp_path / "cache", fingerprint="fp-new")
    new.put(CELL, {"metric": 2})
    entries = [json.loads(p.read_text())
               for p in (tmp_path / "cache").glob("*.json")]
    assert [e["fingerprint"] for e in entries] == ["fp-new"]


def test_gc_races_concurrent_writer(tmp_path, monkeypatch):
    """GC racing a concurrent same-generation writer: entries the
    writer lands *mid-scan* (atomic rename, current fingerprint) must
    survive, entries another GC already unlinked must be skipped
    without error, and only stale generations die.

    The interleave is simulated at the read step: the first stale
    entry GC inspects triggers (a) a concurrent writer completing a
    fresh current-generation put and (b) a sibling GC unlinking one of
    the other stale files before this GC reaches it.
    """
    from pathlib import Path

    root = tmp_path / "cache"
    old = CellCache(root, fingerprint="fp-old")
    stale_cells = [{"seed": i} for i in range(4)]
    for cell in stale_cells:
        old.put(cell, 0)
    stale_paths = sorted(root.glob("*.json"))
    assert len(stale_paths) == 4

    new = CellCache(root, fingerprint="fp-new")
    racer = CellCache(root, fingerprint="fp-new")
    racer._gc_done = True  # the racer only writes; this GC scans
    fired = {"done": False}
    real_read_text = Path.read_text

    def racing_read_text(self, *args, **kwargs):
        if not fired["done"] and self in stale_paths:
            fired["done"] = True
            # (a) concurrent writer completes a current-gen entry
            racer.put({"landed": "mid-scan"}, {"metric": 7})
            # (b) a sibling GC beats us to a different stale file
            victim = next(p for p in stale_paths
                          if p != self and p.exists())
            victim.unlink()
        return real_read_text(self, *args, **kwargs)

    monkeypatch.setattr(Path, "read_text", racing_read_text)
    new.put(CELL, {"metric": 1})  # first put runs the GC scan
    monkeypatch.undo()

    survivors = {p.name: json.loads(p.read_text())["fingerprint"]
                 for p in root.glob("*.json")}
    assert set(survivors.values()) == {"fp-new"}
    # Both current-generation entries survived the scan: the one this
    # cache wrote and the one the racer landed mid-scan.
    assert len(survivors) == 2
    assert new.get(CELL) == {"metric": 1}
    assert racer.get({"landed": "mid-scan"}) == {"metric": 7}


def test_gc_tolerates_entry_vanishing_before_unlink(tmp_path,
                                                    monkeypatch):
    """The unlink itself can lose the race too: a stale path that
    disappears between the read and the ``unlink`` must not abort the
    scan (the remaining stale entries still die)."""
    import os as _os
    from pathlib import Path

    root = tmp_path / "cache"
    old = CellCache(root, fingerprint="fp-old")
    for i in range(3):
        old.put({"seed": i}, i)
    doomed = sorted(root.glob("*.json"))[0]
    real_unlink = Path.unlink
    fired = {"done": False}

    def racing_unlink(self, *args, **kwargs):
        if not fired["done"] and self == doomed:
            fired["done"] = True
            _os.unlink(self)  # the sibling process got there first
        return real_unlink(self, *args, **kwargs)

    monkeypatch.setattr(Path, "unlink", racing_unlink)
    new = CellCache(root, fingerprint="fp-new")
    new.put(CELL, {"metric": 1})
    monkeypatch.undo()
    fingerprints = {json.loads(p.read_text())["fingerprint"]
                    for p in root.glob("*.json")}
    assert fingerprints == {"fp-new"}


def test_clear_and_len(cache):
    cache.put(CELL, 1)
    cache.put({"other": True}, 2)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0


# ----------------------------------------------------------------------
# env construction
# ----------------------------------------------------------------------

@pytest.mark.parametrize("value", ["", "0", "off", "no", "FALSE"])
def test_cache_from_env_disabled(monkeypatch, value):
    monkeypatch.setenv("REPRO_CELL_CACHE", value)
    assert cache_from_env() is None


def test_cache_from_env_default_dir(monkeypatch):
    monkeypatch.setenv("REPRO_CELL_CACHE", "1")
    assert cache_from_env().root.name == ".repro-cell-cache"


def test_cache_from_env_explicit_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CELL_CACHE", str(tmp_path / "c"))
    assert cache_from_env().root == tmp_path / "c"


# ----------------------------------------------------------------------
# cell_map integration
# ----------------------------------------------------------------------

def test_cell_map_uses_cache(tmp_path):
    cache = CellCache(tmp_path / "cache", fingerprint="fp")
    calls = []

    def compute(cell):
        calls.append(cell)
        return cell * 10

    cells = [1, 2, 3]
    assert parallel.cell_map(compute, cells, jobs=None,
                             cache=cache) == [10, 20, 30]
    assert calls == cells
    # warm rerun: nothing executes, results come from the cache
    assert parallel.cell_map(compute, cells, jobs=None,
                             cache=cache) == [10, 20, 30]
    assert calls == cells
    assert cache.hits == 3


# ----------------------------------------------------------------------
# corruption: bit flips and truncation are evicted, never served
# ----------------------------------------------------------------------

def test_bitflipped_entry_is_evicted_and_recomputed(cache):
    cache.put(CELL, {"metric": 42})
    path = cache.path_for(CELL)
    # flip a bit: still valid JSON, but the stored sha no longer
    # matches the result
    entry = json.loads(path.read_text())
    entry["result"] = {"metric": 43}
    path.write_text(json.dumps(entry))
    with pytest.warns(RuntimeWarning, match="hash mismatch"):
        assert cache.get(CELL) is CellCache.MISS
    assert not path.exists()  # evicted, not left to warn again
    # the recompute repopulates the entry and it serves again
    cache.put(CELL, {"metric": 42})
    assert cache.get(CELL) == {"metric": 42}


def test_truncated_entry_is_evicted_with_one_warning(cache):
    cache.put(CELL, {"metric": 42})
    path = cache.path_for(CELL)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    with pytest.warns(RuntimeWarning, match="truncated"):
        assert cache.get(CELL) is CellCache.MISS
    assert not path.exists()
    # subsequent lookups are plain (silent) misses: warn once only
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert cache.get(CELL) is CellCache.MISS


def test_corrupt_entry_recomputes_through_cell_map(tmp_path):
    cache = CellCache(tmp_path / "cache", fingerprint="fp")
    calls = []

    def compute(cell):
        calls.append(cell)
        return cell * 10

    assert parallel.cell_map(compute, [7], jobs=None,
                             cache=cache) == [70]
    # corrupt the entry in place (bit flip in the stored result)
    path = cache.path_for(7)
    entry = json.loads(path.read_text())
    entry["result"] = 71
    path.write_text(json.dumps(entry))
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert parallel.cell_map(compute, [7], jobs=None,
                                 cache=cache) == [70]
    assert calls == [7, 7]  # recomputed, the corrupt 71 never served
    # and the recompute healed the entry
    assert cache.get(7) == 70
