"""Tests for the reader-writer lock."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec
from repro.core.errors import SimulationError
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.sync import RWLock


def make_engine(ncpus=4):
    return Engine(smp(ncpus), scheduler_factory("fifo"), seed=81)


def test_concurrent_readers():
    eng = make_engine()
    lock = RWLock(eng)
    concurrency = {"now": 0, "peak": 0}

    def reader(ctx):
        yield lock.acquire_read()
        concurrency["now"] += 1
        concurrency["peak"] = max(concurrency["peak"],
                                  concurrency["now"])
        yield Run(msec(5))
        concurrency["now"] -= 1
        yield lock.release()

    for i in range(4):
        eng.spawn(ThreadSpec(f"r{i}", reader))
    eng.run(until=sec(1))
    assert concurrency["peak"] == 4
    assert lock.read_acquisitions == 4


def test_writer_excludes_everyone():
    eng = make_engine()
    lock = RWLock(eng)
    overlaps = []
    state = {"writer_active": False, "readers": 0}

    def writer(ctx):
        yield lock.acquire_write()
        state["writer_active"] = True
        if state["readers"]:
            overlaps.append("reader-during-write")
        yield Run(msec(5))
        state["writer_active"] = False
        yield lock.release()

    def reader(ctx):
        yield lock.acquire_read()
        state["readers"] += 1
        if state["writer_active"]:
            overlaps.append("write-during-read")
        yield Run(msec(3))
        state["readers"] -= 1
        yield lock.release()

    eng.spawn(ThreadSpec("w", writer))
    for i in range(3):
        eng.spawn(ThreadSpec(f"r{i}", reader))
    eng.run(until=sec(1))
    assert not overlaps


def test_writer_preference_blocks_new_readers():
    eng = make_engine()
    lock = RWLock(eng)
    order = []

    def long_reader(ctx):
        yield lock.acquire_read()
        order.append("reader1-in")
        yield Run(msec(10))
        yield lock.release()

    def writer(ctx):
        yield Sleep(msec(2))
        yield lock.acquire_write()
        order.append("writer-in")
        yield Run(msec(2))
        yield lock.release()

    def late_reader(ctx):
        yield Sleep(msec(4))  # arrives while the writer waits
        yield lock.acquire_read()
        order.append("reader2-in")
        yield lock.release()

    eng.spawn(ThreadSpec("r1", long_reader))
    eng.spawn(ThreadSpec("w", writer))
    eng.spawn(ThreadSpec("r2", late_reader))
    eng.run(until=sec(1))
    # the late reader queued behind the waiting writer
    assert order == ["reader1-in", "writer-in", "reader2-in"]


def test_release_without_holding_raises():
    eng = make_engine()
    lock = RWLock(eng)

    def bad(ctx):
        yield lock.release()

    eng.spawn(ThreadSpec("bad", bad))
    with pytest.raises(SimulationError):
        eng.run(until=sec(1))


def test_batched_reader_admission_after_writer():
    """When the writer releases, every leading queued reader is
    admitted together."""
    eng = make_engine()
    lock = RWLock(eng)
    admitted_at = {}

    def writer(ctx):
        yield lock.acquire_write()
        yield Run(msec(10))
        yield lock.release()

    def reader(ctx):
        yield Sleep(msec(1))
        yield lock.acquire_read()
        admitted_at[ctx.thread.name] = ctx.now
        yield Run(msec(2))
        yield lock.release()

    eng.spawn(ThreadSpec("w", writer))
    for i in range(3):
        eng.spawn(ThreadSpec(f"r{i}", reader))
    eng.run(until=sec(1))
    times = list(admitted_at.values())
    assert len(times) == 3
    assert max(times) - min(times) <= msec(1)
    assert min(times) >= msec(10)
