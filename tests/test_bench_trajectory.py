"""The bench trajectory recorder (benchmarks/check_bench.py):
entry shape, same-sha replacement, and corrupt-file recovery."""

import importlib.util
import json
import os

import pytest

_CHECK_BENCH = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "check_bench.py")


@pytest.fixture
def check_bench(tmp_path, monkeypatch):
    """The check_bench module with its trajectory file redirected to a
    temp dir and the git sha pinned."""
    spec = importlib.util.spec_from_file_location("check_bench",
                                                  _CHECK_BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "TRAJECTORY",
                        str(tmp_path / "BENCH_trajectory.json"))
    monkeypatch.setattr(module, "_git_sha", lambda: "abc1234")
    return module


def _current(eps, smoke=True):
    return {"smoke": smoke,
            "profiles": {name: {"events_per_sec": value}
                         for name, value in eps.items()}}


def test_entry_shape(check_bench):
    entry = check_bench.append_trajectory(
        _current({"tick_4x8": 100_000.0, "fig6_cfs": 50_000.0}))
    assert entry == {
        "sha": "abc1234",
        "smoke": True,
        "events_per_sec": {"fig6_cfs": 50_000.0,
                           "tick_4x8": 100_000.0},
    }
    with open(check_bench.TRAJECTORY) as fh:
        assert json.load(fh) == [entry]


def test_same_sha_replaced_not_duplicated(check_bench):
    check_bench.append_trajectory(_current({"a": 1.0}))
    check_bench.append_trajectory(_current({"a": 2.0}))
    with open(check_bench.TRAJECTORY) as fh:
        trajectory = json.load(fh)
    assert len(trajectory) == 1
    assert trajectory[0]["events_per_sec"] == {"a": 2.0}


def test_smoke_and_full_entries_coexist(check_bench):
    check_bench.append_trajectory(_current({"a": 1.0}, smoke=True))
    check_bench.append_trajectory(_current({"a": 2.0}, smoke=False))
    with open(check_bench.TRAJECTORY) as fh:
        assert len(json.load(fh)) == 2


def test_corrupt_trajectory_recovered(check_bench):
    with open(check_bench.TRAJECTORY, "w") as fh:
        fh.write("{not json")
    check_bench.append_trajectory(_current({"a": 1.0}))
    with open(check_bench.TRAJECTORY) as fh:
        assert len(json.load(fh)) == 1


def _write(path, payload):
    with open(path, "w") as fh:
        json.dump(payload, fh)


@pytest.fixture
def gated(check_bench, tmp_path, monkeypatch):
    """check_bench with CURRENT/BASELINE also redirected, ready to
    drive ``main()`` against synthetic results."""
    monkeypatch.setattr(check_bench, "CURRENT",
                        str(tmp_path / "BENCH_simulator.json"))
    monkeypatch.setattr(check_bench, "BASELINE",
                        str(tmp_path / "BENCH_baseline.json"))
    return check_bench


def test_gate_tolerance_is_median_tight(gated):
    """Median-of-3 recording holds the regression gate at 1.5x."""
    assert gated.MAX_REGRESSION == 1.5


def test_gate_passes_within_tolerance(gated):
    _write(gated.BASELINE, _current({"a": 150_000.0}))
    _write(gated.CURRENT, _current({"a": 101_000.0}))  # 1.49x below
    assert gated.main() == 0


def test_gate_fails_beyond_tolerance(gated):
    _write(gated.BASELINE, _current({"a": 150_000.0}))
    _write(gated.CURRENT, _current({"a": 99_000.0}))  # 1.52x below
    assert gated.main() == 1


def test_gate_skips_on_smoke_mismatch(gated):
    _write(gated.BASELINE, _current({"a": 150_000.0}, smoke=False))
    _write(gated.CURRENT, _current({"a": 1.0}, smoke=True))
    assert gated.main() == 0


def test_git_sha_fallback(check_bench, monkeypatch):
    """Outside a git checkout the sha is the literal ``unknown``."""
    spec = importlib.util.spec_from_file_location("check_bench_sha",
                                                  _CHECK_BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "HERE", "/nonexistent-dir")
    assert module._git_sha() == "unknown"
