"""Parallel experiment fan-out == serial, row for row.

``repro.experiments.parallel`` promises that ``--jobs N`` only changes
the wall clock: the cell list is built in a stable order, Pool.map
returns results in submission order, and the merge code is shared with
the serial path.  These tests pin that promise down.
"""

import pytest

from repro.experiments.parallel import cell_map, default_jobs
from repro.experiments.registry import run_experiment

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


def _square_cell(cell):
    # Module-level so it pickles into pool workers.
    base, offset = cell
    return {"cell": cell, "value": base * base + offset}


def test_cell_map_serial_matches_parallel():
    cells = [(i, i % 3) for i in range(10)]
    serial = cell_map(_square_cell, cells, jobs=None)
    fanned = cell_map(_square_cell, cells, jobs=4)
    assert serial == fanned
    # Results come back in cell order, not completion order.
    assert [r["cell"] for r in fanned] == cells


def test_cell_map_jobs_zero_means_all_cores():
    assert default_jobs() >= 1
    cells = [(i, 0) for i in range(4)]
    assert cell_map(_square_cell, cells, jobs=0) == \
        cell_map(_square_cell, cells, jobs=None)


def test_cell_map_single_cell_stays_in_process():
    # One cell short-circuits the pool entirely; a lambda (unpicklable)
    # proves no worker process was involved.
    assert cell_map(lambda c: c + 1, [41], jobs=8) == [42]


if HAVE_HYPOTHESIS:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 5)),
                    max_size=8),
           st.sampled_from([None, 1, 2, 3]))
    def test_cell_map_order_property(cells, jobs):
        assert cell_map(_square_cell, cells, jobs=jobs) == \
            [_square_cell(c) for c in cells]


@pytest.mark.slow
def test_fig6_quick_rows_identical_under_jobs():
    # The acceptance criterion: fig6 quick under --jobs 4 produces
    # exactly the rows of a serial run.
    serial = run_experiment("fig6", quick=True, seed=1)
    fanned = run_experiment("fig6", quick=True, seed=1, jobs=4)
    assert fanned.rows == serial.rows
    assert fanned.data == serial.data
    assert fanned.text == serial.text


def test_registry_ignores_jobs_for_serial_only_drivers():
    # table1 has no jobs parameter; the registry must swallow the flag
    # rather than TypeError into the driver.
    result = run_experiment("table1", quick=True, seed=1, jobs=4)
    assert result.rows
