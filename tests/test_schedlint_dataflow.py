"""schedlint ``--dataflow`` tier: CFG, taint, parity, atomicity.

The seeded-mutation self-check is the heart of this file: every rule
family carries known-bad fixtures (synthetic snippets for taint and
atomicity, textual mutations of the *real* engine/scheduler sources
for parity) and the tier must flag every one of them, plus the
sanitizer/idiom negatives it must stay silent on.  Baseline and SARIF
plumbing, CLI exit codes, and the <10s wall-time budget for the full
tree round it out.
"""

import ast
import json
import os
import textwrap
import time

import pytest

from repro.analysis.lint import main
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import (DATAFLOW_RULES,
                                       REPLACED_BY_DATAFLOW, RULES,
                                       effective_rules, lint_paths,
                                       lint_source)
from repro.analysis.lint.dataflow import atomicity
from repro.analysis.lint.dataflow.baseline import (apply_baseline,
                                                   baseline_key,
                                                   canonical_path,
                                                   load_baseline,
                                                   write_baseline)
from repro.analysis.lint.dataflow.cfg import build_cfg, module_functions
from repro.analysis.lint.dataflow.parity import (RULE_FASTPATH,
                                                 RULE_TICKHOOK,
                                                 check_parity)
from repro.analysis.lint.dataflow.sarif import sarif_dict
from repro.analysis.lint.dataflow.solver import (env_join,
                                                 solve_forward)
from repro.analysis.lint.dataflow.taint import analyze_module

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
ENGINE = os.path.join(SRC, "repro", "core", "engine.py")
CFS = os.path.join(SRC, "repro", "cfs", "core.py")
ULE = os.path.join(SRC, "repro", "ule", "core.py")


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lint_df(snippet, path="repro/somewhere/code.py"):
    return lint_source(textwrap.dedent(snippet), path=path,
                       dataflow=True)


def taint_of(snippet, path="repro/somewhere/code.py"):
    tree = ast.parse(textwrap.dedent(snippet))
    return analyze_module(tree, path)


def real_sources():
    out = {}
    for path in (ENGINE, CFS, ULE):
        with open(path, "r", encoding="utf-8") as handle:
            out[os.path.relpath(path, SRC)] = handle.read()
    return out


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------

def cfg_of(snippet):
    tree = ast.parse(textwrap.dedent(snippet))
    assert isinstance(tree.body[0], ast.FunctionDef)
    return build_cfg(tree.body[0].body)


def test_cfg_linear_body_is_one_block():
    cfg = cfg_of("""
        def f():
            a = 1
            b = a + 1
            return b
        """)
    entry = cfg.blocks[cfg.entry]
    assert [i.kind for i in entry.items] == ["stmt", "stmt", "stmt"]
    assert entry.succs == [cfg.exit]
    assert cfg.blocks[cfg.exit].items == []


def test_cfg_if_else_branches_and_join():
    cfg = cfg_of("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """)
    entry = cfg.blocks[cfg.entry]
    assert entry.items[-1].kind == "test"
    assert len(entry.succs) == 2
    join = [b for b in cfg.blocks
            if b.items and isinstance(b.items[0].node, ast.Return)]
    assert len(join) == 1
    assert sorted(cfg.preds()[join[0].bid]) == sorted(entry.succs)


def test_cfg_while_loop_back_edge_and_depth():
    cfg = cfg_of("""
        def f(n):
            while n:
                n -= 1
            return n
        """)
    headers = [b for b in cfg.blocks if b.is_loop_header]
    assert len(headers) == 1
    header = headers[0]
    body = [b for b in cfg.blocks
            if b.loop_depth == 1 and not b.is_loop_header and b.items]
    assert body and header.bid in body[0].succs  # the back edge
    assert header.loop_depth == 0 or header.is_loop_header


def test_cfg_code_after_return_is_unreachable():
    cfg = cfg_of("""
        def f():
            return 1
            x = 2
        """)
    preds = cfg.preds()
    dead = [b for b in cfg.blocks
            if b.items
            and isinstance(b.items[0].node, ast.Assign)]
    assert dead and preds[dead[0].bid] == []


def test_cfg_break_skips_loop_else():
    cfg = cfg_of("""
        def f(xs):
            for x in xs:
                if x:
                    break
            return 0
        """)
    # the break edge must reach the after-loop block directly
    assert any(b.items and b.items[0].kind == "iter"
               for b in cfg.blocks)


def test_module_functions_covers_methods_not_closures():
    tree = ast.parse(textwrap.dedent("""
        def top():
            def inner():
                pass
        class C:
            def method(self):
                pass
        """))
    names = [info.qualname for info in module_functions(tree)]
    assert "top" in names
    assert any(name.endswith("method") for name in names)
    assert not any("inner" in name for name in names)


# ----------------------------------------------------------------------
# fixed-point solver
# ----------------------------------------------------------------------

def test_solver_joins_branch_facts():
    cfg = cfg_of("""
        def f(x):
            if x:
                a = 1
            else:
                b = 2
            return 0
        """)

    def transfer(block, env):
        out = dict(env)
        for item in block.items:
            node = item.node
            if isinstance(node, ast.Assign) \
                    and isinstance(node.targets[0], ast.Name):
                out[node.targets[0].id] = frozenset({"defined"})
        return out

    envs = solve_forward(cfg, {}, transfer)
    exit_env = envs[cfg.exit]
    assert exit_env.get("a") == frozenset({"defined"})
    assert exit_env.get("b") == frozenset({"defined"})


def test_solver_reaches_fixpoint_through_loop():
    cfg = cfg_of("""
        def f(n):
            while n:
                a = 1
            return 0
        """)

    def transfer(block, env):
        out = dict(env)
        for item in block.items:
            node = item.node
            if isinstance(node, ast.Assign) \
                    and isinstance(node.targets[0], ast.Name):
                out[node.targets[0].id] = frozenset({"loop"})
        return out

    envs = solve_forward(cfg, {}, transfer)
    assert envs[cfg.exit].get("a") == frozenset({"loop"})


def test_env_join_is_keywise_union():
    a = {"x": frozenset({1}), "y": frozenset({2})}
    b = {"x": frozenset({3})}
    joined = env_join(a, b)
    assert joined["x"] == frozenset({1, 3})
    assert joined["y"] == frozenset({2})


# ----------------------------------------------------------------------
# determinism taint: seeded positives
# ----------------------------------------------------------------------

#: (name, snippet, expected rule) — every entry must be flagged
TAINT_FIXTURES = [
    ("wallclock-direct-post", """
        import time
        def f(events):
            events.post(time.time())
        """, "taint-wall-clock"),
    ("wallclock-laundered-local", """
        import time
        def f(events):
            t0 = time.time()
            deadline = t0 + 100
            events.post(deadline)
        """, "taint-wall-clock"),
    ("wallclock-through-helper", """
        import time
        def stamp():
            return time.time()
        def f(events):
            events.post(stamp())
        """, "taint-wall-clock"),
    ("wallclock-into-callee-sink", """
        import time
        def emit(events, when):
            events.post(when)
        def f(events):
            emit(events, time.time())
        """, "taint-wall-clock"),
    ("wallclock-module-level-seed", """
        import random
        import time
        random.seed(time.time())
        """, "taint-wall-clock"),
    ("random-reseed", """
        import random
        def f(rng):
            rng.seed(random.random())
        """, "taint-random"),
    ("urandom-randomsource", """
        import os
        from repro.core.rng import RandomSource
        def f():
            return RandomSource(os.urandom(8))
        """, "taint-random"),
    ("env-event-time", """
        import os
        def f(events):
            events.post(int(os.environ["T0"]))
        """, "taint-env"),
    ("id-sort-key", """
        def f(threads):
            return sorted(threads, key=lambda t: id(t))
        """, "taint-id-order"),
    ("set-order-digest", """
        import hashlib
        def f(items):
            h = hashlib.sha256()
            for key in set(items):
                h.update(key)
        """, "taint-set-order"),
    ("set-order-closure-sort-key", """
        def f(xs, universe):
            order = list(set(universe))
            xs.sort(key=lambda e: order.index(e))
        """, "taint-set-order"),
    ("listdir-order-digest", """
        import hashlib
        import os
        def f(root):
            h = hashlib.md5()
            for name in os.listdir(root):
                h.update(name)
            return h.hexdigest()
        """, "taint-set-order"),
]


@pytest.mark.parametrize(
    "name,snippet,rule",
    TAINT_FIXTURES, ids=[f[0] for f in TAINT_FIXTURES])
def test_taint_positive(name, snippet, rule):
    findings = lint_df(snippet)
    assert rule in rules_of(findings), \
        f"{name}: expected {rule}, got {rules_of(findings)}"


@pytest.mark.parametrize(
    "name,snippet,rule",
    TAINT_FIXTURES, ids=[f[0] for f in TAINT_FIXTURES])
def test_taint_suppressed(name, snippet, rule):
    dedented = textwrap.dedent(snippet)
    hits = [f for f in lint_df(snippet) if f.rule == rule]
    lines = dedented.splitlines()
    for finding in hits:
        marker = f"  # schedlint: ignore[{rule}] -- test"
        if marker not in lines[finding.line - 1]:
            lines[finding.line - 1] += marker
    remaining = lint_source("\n".join(lines),
                            path="repro/somewhere/code.py",
                            dataflow=True)
    assert rule not in rules_of(remaining)


def test_taint_interprocedural_message_names_callee():
    findings = lint_df("""
        import time
        def emit(events, when):
            events.post(when)
        def f(events):
            emit(events, time.time())
        """)
    assert any("inside emit()" in f.message for f in findings)


# ----------------------------------------------------------------------
# determinism taint: sanitizers and idioms that must stay silent
# ----------------------------------------------------------------------

TAINT_NEGATIVES = [
    ("sorted-set-no-key", """
        def f(items):
            return sorted(set(items))
        """),
    ("sort-key-pure-function-of-element", """
        def f(classes):
            return sorted(set(classes),
                          key=lambda c: (c.__module__, c.__qualname__))
        """),
    ("len-of-set", """
        def f(items, events):
            events.post(len(set(items)))
        """),
    ("engine-now-is-virtual-time", """
        def f(engine, events):
            events.post(engine.now + 100)
        """),
    ("seeded-random-instance", """
        import random
        def f(seed, events):
            rng = random.Random(seed)
            events.post(rng.randrange(100))
        """),
    ("stable-tid-sort-key", """
        def f(threads):
            return sorted(threads, key=lambda t: t.tid)
        """),
]


@pytest.mark.parametrize(
    "name,snippet",
    TAINT_NEGATIVES, ids=[f[0] for f in TAINT_NEGATIVES])
def test_taint_negative(name, snippet):
    assert rules_of(lint_df(snippet)) == [], name


def test_replaced_syntactic_rules_disabled_under_dataflow():
    enabled = effective_rules(None, dataflow=True)
    for rule in REPLACED_BY_DATAFLOW:
        assert rule in RULES
        assert rule not in enabled
    for rule in DATAFLOW_RULES:
        assert rule in enabled


# ----------------------------------------------------------------------
# fast-path / tick-hook parity against the real sources
# ----------------------------------------------------------------------

def test_parity_real_tree_is_clean():
    assert check_parity(real_sources()) == []


def mutate(files, path_suffix, old, new, after=None):
    out = dict(files)
    for path in out:
        if path.endswith(path_suffix):
            source = out[path]
            if after is not None:
                head, _, tail = source.partition(after)
                assert old in tail, f"{old!r} not found after {after!r}"
                out[path] = head + after + tail.replace(old, new, 1)
            else:
                assert old in source, f"{old!r} not found"
                out[path] = source.replace(old, new, 1)
            return out
    raise AssertionError(path_suffix)


#: (name, mutation kwargs, expected rule) — the parity self-check
PARITY_MUTATIONS = [
    ("fast-drops-now-assignment",
     dict(path_suffix="core/engine.py", after="def _run_fast",
          old="self.now = event.time",
          new="pass"),
     RULE_FASTPATH),
    ("instrumented-gains-statement",
     dict(path_suffix="core/engine.py", after="def _run_instrumented",
          old="self.now = event.time",
          new="self.now = event.time\n"
              "                self._debug_marker = event.time"),
     RULE_FASTPATH),
    ("fast-reorders-stop-check",
     dict(path_suffix="core/engine.py", after="def _run_fast",
          old="if self.live_threads == 0:\n"
              "                    return \"all-exited\"",
          new="pass"),
     RULE_FASTPATH),
    ("cfs-hook-drops-last-ran",
     dict(path_suffix="cfs/core.py",
          old="curr.last_ran = now",
          new="pass"),
     RULE_TICKHOOK),
    ("ule-hook-drops-parking-incr",
     dict(path_suffix="ule/core.py",
          old="engine._nr_stopped_ticks += 1",
          new="pass"),
     RULE_TICKHOOK),
    ("update-curr-gains-unmirrored-statement",
     dict(path_suffix="core/engine.py",
          old="thread.last_ran = now",
          new="thread.last_ran = now\n"
              "        thread.wakeups_accounted = now"),
     RULE_TICKHOOK),
]


@pytest.mark.parametrize(
    "name,kwargs,rule",
    PARITY_MUTATIONS, ids=[m[0] for m in PARITY_MUTATIONS])
def test_parity_mutation_detected(name, kwargs, rule):
    files = mutate(real_sources(), **kwargs)
    findings = check_parity(files)
    assert rule in rules_of(findings), \
        f"{name}: expected {rule}, got {rules_of(findings)}"


# ----------------------------------------------------------------------
# cross-process atomicity in the experiments tree
# ----------------------------------------------------------------------

EXP_PATH = "repro/experiments/code.py"

ATOMICITY_FIXTURES = [
    ("raw-open-write", """
        def save(path, payload):
            with open(path, "w") as handle:
                handle.write(payload)
        """, "nonatomic-write"),
    ("path-write-text", """
        import json
        def save(path, payload):
            path.write_text(json.dumps(payload))
        """, "nonatomic-write"),
    ("json-dump-raw-handle", """
        import json
        def save(path, payload):
            with open(path, "w") as handle:
                json.dump(payload, handle)
        """, "nonatomic-write"),
    ("rmw-without-generation-check", """
        import json
        def compact(entry):
            state = json.loads(entry.read_text())
            state["n"] = state.get("n", 0) + 1
            entry.write_text(json.dumps(state))
        """, "cache-rmw"),
]


@pytest.mark.parametrize(
    "name,snippet,rule",
    ATOMICITY_FIXTURES, ids=[f[0] for f in ATOMICITY_FIXTURES])
def test_atomicity_positive(name, snippet, rule):
    findings = lint_df(snippet, path=EXP_PATH)
    assert rule in rules_of(findings), \
        f"{name}: expected {rule}, got {rules_of(findings)}"


def test_atomicity_out_of_scope_paths_ignored():
    snippet = ATOMICITY_FIXTURES[0][1]
    assert "nonatomic-write" not in rules_of(
        lint_df(snippet, path="repro/core/code.py"))


def test_atomicity_tmp_replace_accepted():
    findings = lint_df("""
        import os
        def save(path, payload):
            tmp = str(path) + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        """, path=EXP_PATH)
    assert "nonatomic-write" not in rules_of(findings)


def test_atomicity_atomic_writer_accepted():
    findings = lint_df("""
        from repro.core.artifacts import atomic_write_json
        def save(path, payload):
            atomic_write_json(path, payload)
        """, path=EXP_PATH)
    assert rules_of(findings) == []


def test_atomicity_generation_checked_rmw_accepted():
    findings = lint_df("""
        import json
        def gc(entry, expected):
            state = json.loads(entry.read_text())
            if state["fingerprint"] != expected:
                return
            entry.unlink()
        """, path=EXP_PATH)
    assert "cache-rmw" not in rules_of(findings)


def test_atomicity_scope_helper():
    assert atomicity.in_scope("src/repro/experiments/runner.py")
    assert not atomicity.in_scope("src/repro/core/engine.py")


# ----------------------------------------------------------------------
# seeded-mutation self-check: the tier catches every planted bug
# ----------------------------------------------------------------------

def test_seeded_fixture_inventory_spans_families():
    """ISSUE acceptance: >= 12 seeded bugs across the three families,
    every one flagged by the dataflow tier (asserted per-fixture
    above; this pins the inventory so it cannot silently shrink)."""
    inventory = (len(TAINT_FIXTURES) + len(PARITY_MUTATIONS)
                 + len(ATOMICITY_FIXTURES))
    assert len(TAINT_FIXTURES) >= 6
    assert len(PARITY_MUTATIONS) >= 3
    assert len(ATOMICITY_FIXTURES) >= 3
    assert inventory >= 12


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def test_canonical_path_strips_tree_prefix():
    assert canonical_path("src/repro/cfs/core.py") == \
        "repro/cfs/core.py"
    assert canonical_path("/x/y/repro/cfs/core.py") == \
        "repro/cfs/core.py"
    assert canonical_path("elsewhere/mod.py") == "elsewhere/mod.py"


def test_baseline_key_is_line_insensitive():
    a = Finding("src/repro/m.py", 10, 0, "taint-env", "msg")
    b = Finding("other/repro/m.py", 99, 4, "taint-env", "msg")
    assert baseline_key(a) == baseline_key(b)


def test_apply_baseline_splits_new_and_stale():
    known = Finding("src/repro/m.py", 10, 0, "taint-env", "known")
    fresh = Finding("src/repro/m.py", 20, 0, "taint-env", "fresh")
    gone = ("repro/m.py", "taint-env", "fixed long ago")
    baseline = [baseline_key(known), gone]
    new, stale = apply_baseline([known, fresh], baseline)
    assert new == [fresh]
    assert stale == [gone]


def test_baseline_round_trip(tmp_path):
    target = str(tmp_path / "baseline.json")
    findings = [
        Finding("src/repro/m.py", 10, 0, "taint-env", "msg"),
        Finding("src/repro/m.py", 11, 0, "taint-env", "msg"),
    ]
    count = write_baseline(target, findings)
    assert count == 1  # identical keys collapse
    assert load_baseline(target) == [("repro/m.py", "taint-env", "msg")]
    new, stale = apply_baseline(findings, load_baseline(target))
    assert new == [] and stale == []


def test_missing_baseline_is_empty():
    assert load_baseline("/nonexistent/baseline.json") == []


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------

def test_sarif_snapshot_structure():
    finding = Finding("src/repro/m.py", 7, 4, "taint-env", "boom")
    log = sarif_dict([finding], {"taint-env": "env reads"})
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "schedlint"
    assert {"id": "taint-env",
            "shortDescription": {"text": "env reads"}} \
        in driver["rules"]
    result = run["results"][0]
    assert result["ruleId"] == "taint-env"
    assert result["message"]["text"] == "boom"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 7, "startColumn": 5}  # 1-based col


def test_sarif_rule_table_covers_finding_rules():
    finding = Finding("m.py", 1, 0, "not-in-catalog", "x")
    log = sarif_dict([finding], {})
    ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
    assert "not-in-catalog" in ids
    assert log["runs"][0]["results"][0]["ruleIndex"] == \
        ids.index("not-in-catalog")


# ----------------------------------------------------------------------
# CLI: exit codes, reports, baseline lifecycle
# ----------------------------------------------------------------------

DIRTY = ("\"\"\"m.\"\"\"\n"
         "import time\n"
         "def f(events):\n"
         "    events.post(time.time())\n")


def test_cli_dataflow_clean_exit_zero(tmp_path, capsys):
    mod = tmp_path / "clean.py"
    mod.write_text("\"\"\"m.\"\"\"\nX = 1\n")
    assert main(["--dataflow", "--no-contract", str(mod)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_dataflow_finding_exit_one(tmp_path, capsys):
    mod = tmp_path / "dirty.py"
    mod.write_text(DIRTY)
    assert main(["--dataflow", "--no-contract", str(mod)]) == 1
    assert "taint-wall-clock" in capsys.readouterr().out


def test_cli_dataflow_rule_ids_accepted_in_rules_flag(tmp_path):
    mod = tmp_path / "dirty.py"
    mod.write_text(DIRTY)
    assert main(["--dataflow", "--no-contract",
                 "--rules", "taint-wall-clock", str(mod)]) == 1
    assert main(["--dataflow", "--no-contract",
                 "--rules", "cache-rmw", str(mod)]) == 0


def test_cli_unknown_rule_exit_two(capsys):
    assert main(["--rules", "not-a-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_update_baseline_requires_baseline(capsys):
    assert main(["--update-baseline"]) == 2


def test_cli_baseline_lifecycle(tmp_path, capsys):
    mod = tmp_path / "dirty.py"
    mod.write_text(DIRTY)
    baseline = str(tmp_path / "baseline.json")
    argv = ["--dataflow", "--no-contract", "--baseline", baseline,
            str(mod)]
    assert main(argv) == 1                       # not yet accepted
    assert main(argv + ["--update-baseline"]) == 0
    capsys.readouterr()
    assert main(argv) == 0                       # baselined now
    mod.write_text("\"\"\"m.\"\"\"\nX = 1\n")    # bug fixed
    assert main(argv) == 0
    assert "stale baseline entry" in capsys.readouterr().err


def test_cli_sarif_and_json_reports(tmp_path):
    mod = tmp_path / "dirty.py"
    mod.write_text(DIRTY)
    sarif = tmp_path / "out.sarif"
    report = tmp_path / "out.json"
    main(["--dataflow", "--no-contract", "--sarif", str(sarif),
          "--json", str(report), str(mod)])
    log = json.loads(sarif.read_text())
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"][0]["ruleId"] == "taint-wall-clock"
    data = json.loads(report.read_text())
    assert data["counts"] == {"taint-wall-clock": 1}
    assert "taint-wall-clock" in data["rules"]


def test_cli_list_rules_includes_dataflow_tier(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in DATAFLOW_RULES:
        assert rule in out


# ----------------------------------------------------------------------
# whole-tree gate
# ----------------------------------------------------------------------

def test_shipped_tree_clean_and_fast_at_dataflow_tier():
    started = time.monotonic()
    findings = lint_paths([os.path.join(SRC, "repro")], dataflow=True)
    elapsed = time.monotonic() - started
    assert findings == []
    assert elapsed < 10.0, f"dataflow tier took {elapsed:.1f}s"
