"""Epoch-tick kernel digest identity: lane on vs lane off.

The tick lane (:class:`~repro.core.events.EventLane`) batches the
engine's recurring tick/resched traffic into a sorted side lane that
:meth:`Engine._pop_next` merges with the main queue head-by-head; the
epoch prefold folds all same-instant tick work for one instant in one
pass.  ``REPRO_TICK_LANE=0`` is the kill-switch that routes everything
through the main queue like any other event.

The contract is *digest identity*: the lane is a transport
optimization and must never change a schedule.  These tests run the
fuzzer's scenarios — plus a directed all-cores-tick-together workload,
where every core ticks at the same instants and the epoch prefold has
maximal same-instant collisions — under both settings and assert
identical canonical digests, stop reasons, and final clocks, across
the stock schedulers and a zoo slice.
"""

import pytest

from repro.core import Engine, Run, ThreadSpec, run_forever
from repro.core.clock import msec
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.testing.fuzzer import generate_scenario, run_scenario
from repro.tracing.digest import schedule_digest

#: the stock pair plus a zoo slice (tree-, deadline-, and
#: random-driven policies exercise distinct tick hooks)
SCHEDULERS = ("cfs", "ule", "eevdf", "bfs", "lottery")

FUZZ_SEEDS = (0, 1, 2, 3)


def _run_with_lane(monkeypatch, lane: bool, fn):
    """Run ``fn()`` with the tick lane forced on or off."""
    monkeypatch.setenv("REPRO_TICK_LANE", "1" if lane else "0")
    return fn()


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
@pytest.mark.parametrize("sched", SCHEDULERS)
def test_fuzzed_digests_identical_lane_on_off(monkeypatch, seed,
                                              sched):
    scenario = generate_scenario(seed, smoke=True)
    outcomes = {}
    for lane in (True, False):
        def leg():
            engine, _, reason = run_scenario(scenario, sched)
            # guard: the env toggle actually selected the leg
            assert (engine._lane is not None) == lane
            return schedule_digest(engine), reason, engine.now
        outcomes[lane] = _run_with_lane(monkeypatch, lane, leg)
    assert outcomes[True] == outcomes[False], scenario.describe()


def _spin(ctx):
    yield run_forever()


def _collision_engine(sched: str) -> Engine:
    """Four always-running spinners pinned one per core from t=0:
    every core's periodic tick fires at the very same instants for
    the whole run — the epoch prefold's worst (and best) case."""
    engine = Engine(smp(4), scheduler_factory(sched), seed=7)
    for cpu in range(4):
        engine.spawn(ThreadSpec(f"spin{cpu}", _spin,
                                affinity=frozenset({cpu})))
    engine.run(until=msec(40))
    return engine


@pytest.mark.parametrize("sched", SCHEDULERS)
def test_same_instant_tick_collisions(monkeypatch, sched):
    digests = {}
    for lane in (True, False):
        def leg():
            engine = _collision_engine(sched)
            assert (engine._lane is not None) == lane
            return schedule_digest(engine), engine.events_processed
        digests[lane] = _run_with_lane(monkeypatch, lane, leg)
    assert digests[True] == digests[False]


@pytest.mark.parametrize("sched", ("cfs", "ule"))
@pytest.mark.parametrize("tickless", (False, True))
def test_lane_digest_identity_with_tickless(monkeypatch, sched,
                                            tickless):
    """NO_HZ park/unpark reposts ticks through the lane's repost
    path; identity must hold in both tick regimes."""
    scenario = generate_scenario(11, smoke=True)
    outcomes = {}
    for lane in (True, False):
        def leg():
            engine, _, reason = run_scenario(scenario, sched,
                                             tickless=tickless)
            assert (engine._lane is not None) == lane
            return schedule_digest(engine), reason, engine.now
        outcomes[lane] = _run_with_lane(monkeypatch, lane, leg)
    assert outcomes[True] == outcomes[False], scenario.describe()
