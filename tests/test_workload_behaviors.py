"""Behavioural tests for the workload models: the properties the
paper's arguments depend on."""

import pytest

from repro.core.clock import msec, sec, usec
from tests.conftest import build_engine
from repro.workloads import (ApacheWorkload, CrayWorkload,
                             KernelNoiseWorkload, SysbenchWorkload)
from repro.workloads.nas import dc, ep, mg
from repro.workloads.phoronix import ScimarkWorkload
from repro.workloads.registry import FIGURE5_APPS


def make_engine(ncpus=1, sched="fifo", **kw):
    """Seed-17 engine (shared builder lives in tests/conftest.py)."""
    return build_engine(sched, ncpus, seed=17, **kw)


# ------------------------------------------------------------- sysbench

def test_sysbench_workers_inherit_growing_penalty():
    """Under ULE, later-forked workers start with higher inherited
    penalties (the §5.2 gradient)."""
    eng = make_engine(sched="ule")
    wl = SysbenchWorkload(nthreads=32, transactions_per_thread=5)
    wl.launch(eng, at=0)
    eng.run(until=sec(2))
    # sample the inherited history of first vs last forked worker
    first, last = wl.workers[0], wl.workers[-1]
    assert last.policy.hist.runtime > first.policy.hist.runtime


def test_sysbench_latency_measured_from_arrival():
    eng = make_engine()
    wl = SysbenchWorkload(nthreads=4, transactions_per_thread=10,
                          init_per_thread_ns=msec(1))
    wl.launch(eng, at=0)
    eng.run(until=sec(30), stop_when=lambda e: wl.done(e))
    lat = eng.metrics.latency("sysbench.latency")
    # latency excludes the voluntary wait: at least the service time,
    # far less than wait + service on an idle core
    assert lat.count >= 40
    assert lat.mean >= wl.service_ns


def test_sysbench_master_sleeps_after_init():
    eng = make_engine(ncpus=2)
    wl = SysbenchWorkload(nthreads=8, transactions_per_thread=20,
                          init_per_thread_ns=msec(2))
    wl.launch(eng, at=0)
    eng.run(until=sec(30), stop_when=lambda e: wl.done(e))
    assert wl.master.total_sleeptime > 0
    # master's CPU time is just the init work
    assert wl.master.total_runtime == pytest.approx(
        8 * msec(2), rel=0.05)


# --------------------------------------------------------------- apache

def test_apache_request_conservation():
    eng = make_engine(ncpus=2)
    wl = ApacheWorkload(nworkers=8, outstanding=8, total_requests=100)
    wl.launch(eng, at=0)
    eng.run(until=sec(30), stop_when=lambda e: wl.done(e))
    assert wl.sent == 100
    assert wl.completed >= 100


def test_apache_ab_single_threaded():
    eng = make_engine(ncpus=4)
    wl = ApacheWorkload(nworkers=8, total_requests=100)
    wl.launch(eng, at=0)
    eng.run(until=sec(30), stop_when=lambda e: wl.done(e))
    ab_threads = [t for t in wl.threads(eng) if t.name == "ab"]
    assert len(ab_threads) == 1


# ----------------------------------------------------------------- NAS

def test_mg_threads_never_voluntarily_sleep_when_synchronized():
    """With balanced phases and spin barriers, MG threads spin instead
    of sleeping (the §6.3 precondition for ULE's advantage)."""
    eng = make_engine(ncpus=4, sched="ule")
    wl = mg()
    wl.nthreads = 4
    wl.iterations = 10
    wl.imbalance = 0.0  # perfectly balanced phases
    wl.launch(eng, at=0)
    eng.run(until=sec(60), stop_when=lambda e: wl.done(e))
    for t in wl.threads(eng):
        assert t.total_sleeptime == 0


def test_dc_threads_sleep_for_io():
    eng = make_engine(ncpus=4)
    wl = dc()
    wl.nthreads = 4
    wl.iterations = 5
    wl.launch(eng, at=0)
    eng.run(until=sec(60), stop_when=lambda e: wl.done(e))
    for t in wl.threads(eng):
        assert t.total_sleeptime >= 5 * wl.io_ns


def test_ep_has_no_barrier_coupling():
    """EP threads finish independently: with unequal work, early
    finishers exit while others continue."""
    eng = make_engine(ncpus=2)
    wl = ep()
    wl.nthreads = 4
    wl.jitter = 0.3
    wl.launch(eng, at=0)
    eng.run(until=sec(120), stop_when=lambda e: wl.done(e))
    exits = sorted(t.exited_at for t in wl.threads(eng))
    assert exits[0] < exits[-1]


# ----------------------------------------------------------- c-ray

def test_cray_wake_times_monotone_along_chain():
    eng = make_engine(ncpus=4)
    wl = CrayWorkload(nthreads=12, compute_ns=msec(5),
                      fork_spacing_ns=msec(1))
    wl.launch(eng, at=0)
    eng.run(until=sec(60), stop_when=lambda e: wl.done(e))
    times = wl.wake_times()
    # the releasing party (whoever arrived last) records its own
    # arrival time and sits outside the serial chain
    releaser = wl._cascade._release_index
    chain = [times[i] for i in sorted(times) if i != releaser]
    assert chain == sorted(chain)


# ----------------------------------------------------------- scimark

def test_scimark_jvm_demand_is_open_loop():
    """The JVM service threads' total burst work tracks elapsed time,
    not scheduling generosity."""
    eng = make_engine(ncpus=2)
    wl = ScimarkWorkload(variant=1, compute_ns=msec(500), njvm=2,
                         burst_ns=msec(5), period_ns=msec(50))
    wl.launch(eng, at=0)
    eng.run(until=sec(30), stop_when=lambda e: wl.done(e))
    jvm = [t for t in wl.threads(eng) if "jvm" in t.name]
    elapsed = wl.compute_thread.exited_at
    expected = (elapsed / msec(50)) * msec(5)
    total = sum(t.total_runtime for t in jvm)
    assert total == pytest.approx(2 * expected, rel=0.3)


# ------------------------------------------------------------- noise

def test_noise_heavy_tail_produces_long_bursts():
    eng = make_engine(ncpus=2)
    wl = KernelNoiseWorkload(period_ns=msec(5), burst_ns=usec(100),
                             tail_prob=0.2, tail_factor=50)
    wl.launch(eng, at=0)
    eng.run(until=sec(5))
    # with 20% tails the daemons' consumption is dominated by them
    total = sum(t.total_runtime for t in wl.threads(eng))
    no_tail_expected = 2 * (sec(5) / msec(5)) * usec(100)
    assert total > 3 * no_tail_expected


def test_noise_daemons_stay_pinned():
    eng = make_engine(ncpus=4)
    wl = KernelNoiseWorkload()
    wl.launch(eng, at=0)
    eng.run(until=sec(1))
    for t in wl.threads(eng):
        cpu = int(t.name.split("/")[1])
        assert t.cpu == cpu


# ------------------------------------------------------- whole registry

@pytest.mark.parametrize("name", sorted(FIGURE5_APPS))
def test_every_figure5_app_completes_under_both_schedulers(name):
    """Every registered application finishes under CFS and ULE on a
    small machine (the full-size runs live in benchmarks/)."""
    for sched in ("cfs", "ule"):
        eng = make_engine(ncpus=4, sched=sched)
        wl = FIGURE5_APPS[name]()
        # shrink the big ones for test speed
        if hasattr(wl, "total_requests"):
            wl.total_requests = min(wl.total_requests, 2000)
        if hasattr(wl, "total_reads"):
            wl.total_reads = min(wl.total_reads, 2000)
        if name == "Sysbench":
            wl.transactions_per_thread = 5
        if hasattr(wl, "items"):
            wl.items = min(wl.items, 200)
        wl.launch(eng, at=0)
        eng.run(until=sec(300), stop_when=lambda e: wl.done(e),
                check_interval=64)
        assert wl.done(eng), f"{name} under {sched} did not finish"
        assert wl.performance(eng) > 0
