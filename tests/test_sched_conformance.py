"""Conformance battery: every registered scheduler, one generic
contract.

Parametrized over :func:`repro.sched.available_schedulers` so a policy
registered by name (the zoo's single enrollment point,
docs/scheduler-zoo.md) is covered with **zero test changes**:

* work conservation — per-core busy time equals executed thread time;
* no lost threads — mid-run, every runnable thread sits on exactly
  one runqueue (the oracle layer's membership probe);
* enqueue/dequeue flag handling — sleep/wake cycles, mid-run renice
  and affinity narrowing (MIGRATE dequeue + enqueue) all land cleanly;
* NO_HZ — the ``needs_tick`` promise: parking idle ticks never
  changes the schedule (tickless on/off digests are bit-identical);
* yield semantics — yielding threads stay runnable, make progress,
  and are charged no runtime for the yield itself;
* determinism — two identical runs produce identical digests (the
  lottery policy draws from the engine-seeded RNG, so this holds for
  randomized policies too).

Everything runs under ``sanitize=True``: the sanitizer's generic
invariants (runqueue integrity, accounting, tick bookkeeping) check
every event of every battery run for free.
"""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, Yield
from repro.core.clock import msec
from repro.core.topology import single_core, smp
from repro.sched import available_schedulers, scheduler_factory
from repro.testing.oracles import check_membership
from repro.tracing.digest import schedule_digest

ALL_REGISTERED = available_schedulers()

UNTIL = msec(400)


def _tags(sched: str, i: int) -> dict:
    """Standalone ``rt`` refuses untagged threads; everything else
    ignores the tag."""
    if sched == "rt":
        return {"rt_priority": 1 + (i % 3),
                "rt_policy": "rr" if i % 2 else "fifo"}
    return {}


def _build(sched: str, ncpus: int = 2, *, seed: int = 0,
           tickless=None) -> Engine:
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory(sched), seed=seed,
                  sanitize=True, tickless=tickless)


def _mixed_workload(engine: Engine, sched: str, count: int = 5):
    """CPU bursts interleaved with short sleeps: exercises NEW and
    WAKEUP enqueues, SLEEP dequeues, and idle transitions."""
    def behavior(ctx):
        for _ in range(6):
            yield Run(msec(2))
            yield Sleep(msec(1))
    threads = []
    for i in range(count):
        spec = ThreadSpec(f"w{i}", behavior, nice=(i % 3) * 5 - 5,
                          tags=_tags(sched, i))
        threads.append(engine.spawn(spec, at=msec(i)))
    return threads


# ----------------------------------------------------------------------
# work conservation + completion
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_work_conservation(sched):
    engine = _build(sched)
    threads = _mixed_workload(engine, sched)
    reason = engine.run(until=UNTIL)
    assert reason == "all-exited", f"{sched}: did not finish ({reason})"
    busy = sum(core.busy_ns for core in engine.machine.cores)
    executed = sum(t.total_runtime for t in threads)
    assert busy == executed, \
        f"{sched}: cores busy {busy} ns != executed {executed} ns"
    assert all(t.total_runtime == 6 * msec(2) for t in threads), \
        f"{sched}: some thread ran more/less than requested"


# ----------------------------------------------------------------------
# no lost threads (mid-run membership probes)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_no_lost_threads_mid_run(sched):
    engine = _build(sched)
    threads = _mixed_workload(engine, sched)
    probes = []

    def probe():
        check_membership(engine, threads, sched)
        probes.append(engine.now)

    for at in range(2, 22, 4):  # five probes across the busy window
        engine.events.post(msec(at), lambda: probe())
    assert engine.run(until=UNTIL) == "all-exited"
    check_membership(engine, threads, sched)
    assert len(probes) == 5


# ----------------------------------------------------------------------
# enqueue/dequeue flag handling (renice + affinity narrowing mid-run)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_flag_handling_renice_and_affinity(sched):
    engine = _build(sched)
    threads = _mixed_workload(engine, sched)
    target = threads[0]

    # renice re-weighs (dequeue+enqueue for weight-based policies)
    engine.events.post(msec(4), lambda: engine.set_nice(target, 10))
    # narrowing affinity off the current CPU forces a MIGRATE
    # dequeue/enqueue pair through the scheduler's flag paths
    engine.events.post(msec(8),
                       lambda: engine.set_affinity(target, (1,)))
    assert engine.run(until=UNTIL) == "all-exited"
    assert target.nice == 10
    assert all(t.total_runtime == 6 * msec(2) for t in threads), \
        f"{sched}: renice/affinity churn lost requested work"


# ----------------------------------------------------------------------
# NO_HZ: the needs_tick contract
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_needs_tick_tickless_digest_equal(sched):
    """Parking idle ticks when ``needs_tick`` says so must be
    schedule-invisible: bit-identical digests with ticks always on."""
    digests = []
    for tickless in (False, True):
        engine = _build(sched, tickless=tickless)
        _mixed_workload(engine, sched)
        assert engine.run(until=UNTIL) == "all-exited"
        digests.append(schedule_digest(engine))
    assert digests[0] == digests[1], \
        f"{sched}: tickless run diverged from always-tick run"


@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_needs_tick_false_means_idle_tick_noop(sched):
    """Direct form of the contract: whenever a core's tick is parked,
    ``needs_tick`` must still be False at quiescent probe points
    (the engine only re-checks at composition changes)."""
    engine = _build(sched, tickless=True)
    _mixed_workload(engine, sched)
    violations = []

    def probe():
        for core in engine.machine.cores:
            if core.tick_stopped and engine.scheduler.needs_tick(core):
                violations.append((engine.now, core.index))

    for at in range(3, 43, 4):
        engine.events.post(msec(at), lambda: probe())
    assert engine.run(until=UNTIL) == "all-exited"
    assert not violations, \
        f"{sched}: tick parked while needs_tick was True: {violations}"


# ----------------------------------------------------------------------
# yield semantics
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_yield_keeps_thread_runnable_and_free(sched):
    """A yield relinquishes the CPU but must neither lose the thread
    nor charge it runtime; alongside a spinner both still finish."""
    engine = _build(sched, ncpus=1)
    def yielder(ctx):
        for _ in range(8):
            yield Run(msec(1))
            yield Yield()
    def spinner(ctx):
        yield Run(msec(8))
    a = engine.spawn(ThreadSpec("yielder", yielder,
                                tags=_tags(sched, 0)))
    b = engine.spawn(ThreadSpec("spinner", spinner,
                                tags=_tags(sched, 1)))
    assert engine.run(until=UNTIL) == "all-exited"
    assert a.total_runtime == 8 * msec(1), \
        f"{sched}: yields were charged as runtime"
    assert b.total_runtime == msec(8)


@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_yield_alone_makes_progress(sched):
    """A lone thread yielding in a loop must not deadlock the core."""
    engine = _build(sched, ncpus=1)
    def solo(ctx):
        for _ in range(16):
            yield Run(msec(1))
            yield Yield()
    t = engine.spawn(ThreadSpec("solo", solo, tags=_tags(sched, 0)))
    assert engine.run(until=UNTIL) == "all-exited"
    assert t.total_runtime == 16 * msec(1)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sched", ALL_REGISTERED)
def test_two_identical_runs_digest_equal(sched):
    """Same topology, workload, and seed -> identical schedules, even
    for randomized policies (lottery draws from the engine RNG)."""
    def one_run():
        engine = _build(sched, seed=7)
        _mixed_workload(engine, sched)
        assert engine.run(until=UNTIL) == "all-exited"
        return schedule_digest(engine)
    assert one_run() == one_run(), f"{sched}: nondeterministic schedule"


def test_zoo_is_registered():
    """The zoo policies the battery is meant to cover are actually
    enrolled (guards against silent registry regressions)."""
    for name in ("eevdf", "bfs", "lottery", "staticprio", "predictive"):
        assert name in ALL_REGISTERED
