"""Tests for the realtime class and the Linux class stack (rt + fair).

The §5.1 claim under test: on Linux, putting the latency-sensitive
application in the realtime class reproduces ULE's absolute
prioritization over CFS threads.
"""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.topology import single_core, smp
from repro.sched import scheduler_factory


def make_engine(ncpus=1, sched="linux", **kw):
    topo = single_core() if ncpus == 1 else smp(ncpus)
    return Engine(topo, scheduler_factory(sched, **kw), seed=6)


def spin(ctx):
    yield run_forever()


def rt_spec(name, behavior, prio, policy=None, **kw):
    tags = {"rt_priority": prio}
    if policy:
        tags["rt_policy"] = policy
    return ThreadSpec(name, behavior, tags=tags, **kw)


# ------------------------------------------------------------- RT class

def test_rt_thread_preempts_and_starves_fair():
    eng = make_engine()
    fair = eng.spawn(ThreadSpec("fair", spin, app="fair"))
    eng.run(until=msec(50))
    rt = eng.spawn(rt_spec("rt", spin, prio=50))
    eng.run(until=msec(200))
    # the realtime thread takes the core outright
    assert rt.is_running
    assert fair.total_runtime <= msec(51)


def test_rt_priority_order_among_rt_threads():
    eng = make_engine()
    lo = eng.spawn(rt_spec("lo", spin, prio=10))
    eng.run(until=msec(10))
    hi = eng.spawn(rt_spec("hi", spin, prio=90))
    eng.run(until=msec(50))
    assert hi.is_running
    # low-prio RT got nothing after hi appeared
    assert lo.total_runtime <= msec(11)


def test_fifo_runs_until_block_among_equals():
    eng = make_engine()
    a = eng.spawn(rt_spec("a", spin, prio=30))
    b = eng.spawn(rt_spec("b", spin, prio=30))
    eng.run(until=sec(1))
    # SCHED_FIFO: the first thread keeps the CPU; its equal never runs
    assert a.total_runtime == sec(1)
    assert b.total_runtime == 0


def test_rr_shares_among_equals():
    eng = make_engine()
    a = eng.spawn(rt_spec("a", spin, prio=30, policy="rr"))
    b = eng.spawn(rt_spec("b", spin, prio=30, policy="rr"))
    eng.run(until=sec(2))
    # SCHED_RR: 100 ms round robin between equals
    assert a.total_runtime == pytest.approx(sec(1), rel=0.15)
    assert b.total_runtime == pytest.approx(sec(1), rel=0.15)


def test_rt_blocking_lets_fair_run():
    eng = make_engine()

    def duty_cycle(ctx):
        for _ in range(20):
            yield Run(msec(2))
            yield Sleep(msec(8))

    rt = eng.spawn(rt_spec("rt", duty_cycle, prio=70))
    fair = eng.spawn(ThreadSpec("fair", spin, app="fair"))
    eng.run(until=msec(200))
    # RT used ~20%, fair got the rest
    assert rt.total_runtime == msec(40)
    assert fair.total_runtime == pytest.approx(msec(160), rel=0.1)


def test_rt_placement_avoids_higher_rt(ncpus=2):
    eng = make_engine(ncpus=2)
    hi = eng.spawn(rt_spec("hi", spin, prio=90))
    eng.run(until=msec(10))
    lo = eng.spawn(rt_spec("lo", spin, prio=10))
    eng.run(until=msec(50))
    # the low-priority RT thread was placed on the other core
    assert lo.is_running
    assert lo.cpu != hi.cpu


# ------------------------------------------------- the paper's §5.1 claim

def test_rt_class_reproduces_ule_prioritization():
    """fibo + a latency-sensitive worker pool: on plain CFS they share;
    with the pool in the RT class it gets absolute priority — the
    behaviour ULE gives for free (§5.1)."""

    def sleeper_behavior(ctx):
        for _ in range(100):
            yield Sleep(msec(5) + usec(137))
            yield Run(msec(1))

    def run_once(rt_pool):
        eng = make_engine(sched="linux")
        hog = eng.spawn(ThreadSpec("fibo", spin, app="fibo"))
        workers = []
        for i in range(4):
            if rt_pool:
                spec = rt_spec(f"db{i}", sleeper_behavior, prio=50,
                               app="db")
            else:
                spec = ThreadSpec(f"db{i}", sleeper_behavior, app="db")
            workers.append(eng.spawn(spec))
        eng.run(until=sec(3))
        wait = sum(w.total_waittime for w in workers)
        switches = sum(w.nr_switches for w in workers)
        return wait / max(1, switches)

    cfs_wait = run_once(rt_pool=False)
    rt_wait = run_once(rt_pool=True)
    # realtime workers run the moment they wake
    assert rt_wait < usec(50)
    assert rt_wait < cfs_wait


def test_stack_accounting_consistency():
    eng = make_engine(ncpus=2)
    rt = eng.spawn(rt_spec("rt", spin, prio=20))
    fair = [eng.spawn(ThreadSpec(f"f{i}", spin, app="f"))
            for i in range(3)]
    eng.run(until=sec(1))
    total = sum(eng.scheduler.nr_runnable(c)
                for c in eng.machine.cores)
    assert total == 4
    for core in eng.machine.cores:
        core.account_to_now()
    busy = sum(c.busy_ns for c in eng.machine.cores)
    executed = rt.total_runtime + sum(t.total_runtime for t in fair)
    assert busy == executed
