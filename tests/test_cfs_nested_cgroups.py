"""Tests for nested cgroups (§2.1's systemd pattern: fairness between
users, then between a user's applications)."""

import pytest

from repro.core import Engine, ThreadSpec, run_forever
from repro.core.clock import sec
from repro.core.topology import single_core
from repro.sched import scheduler_factory


def spin(ctx):
    yield run_forever()


def make_engine():
    return Engine(single_core(), scheduler_factory("cfs"), seed=71)


def spawn_in(eng, name, cgroup):
    return eng.spawn(ThreadSpec(name, spin, tags={"cgroup": cgroup}))


def test_group_by_path_creates_hierarchy():
    eng = make_engine()
    sched = eng.scheduler
    leaf = sched.group_by_path("alice/browser")
    assert leaf.name == "alice/browser"
    assert leaf.parent.name == "alice"
    assert leaf.parent.parent is sched.root_group
    # resolving again returns the same objects
    assert sched.group_by_path("alice/browser") is leaf
    assert sched.group_by_path("alice") is leaf.parent


def test_fairness_between_users_then_apps():
    """alice runs two apps with 3 threads total, bob one app with one
    thread: each *user* gets half the core; alice's apps split her
    half again."""
    eng = make_engine()
    a1 = [spawn_in(eng, f"a-browser{i}", "alice/browser")
          for i in range(2)]
    a2 = [spawn_in(eng, "a-build", "alice/build")]
    b1 = [spawn_in(eng, "b-game", "bob/game")]
    eng.run(until=sec(8))
    alice = sum(t.total_runtime for t in a1 + a2)
    bob = sum(t.total_runtime for t in b1)
    assert alice == pytest.approx(sec(4), rel=0.12)
    assert bob == pytest.approx(sec(4), rel=0.12)
    # within alice: browser and build each get a quarter of the core
    browser = sum(t.total_runtime for t in a1)
    build = sum(t.total_runtime for t in a2)
    assert browser == pytest.approx(sec(2), rel=0.15)
    assert build == pytest.approx(sec(2), rel=0.15)


def test_forked_children_inherit_cgroup():
    from repro.core.actions import Fork, Run
    eng = make_engine()
    children = []

    def parent_behavior(ctx):
        child = yield Fork(ThreadSpec("kid", spin))
        children.append(child)
        yield run_forever()

    eng.spawn(ThreadSpec("parent", parent_behavior,
                         tags={"cgroup": "carol/app"}))
    eng.run(until=sec(1))
    assert children[0].tags["cgroup"] == "carol/app"
    state = eng.scheduler.state_of(children[0])
    assert state.group.name == "carol/app"


def test_three_level_nesting_accounting():
    eng = make_engine()
    spawn_in(eng, "deep", "org/team/service")
    spawn_in(eng, "shallow", "other")
    eng.run(until=sec(2))
    sched = eng.scheduler
    core = eng.machine.cores[0]
    # hierarchical counts are consistent at every level
    assert sched.nr_runnable(core) == 2
    assert sched.group_by_path("org").rq_on(0).h_nr_running == 1
    assert sched.group_by_path("org/team").rq_on(0).h_nr_running == 1
    # and both threads progressed (one deep, one shallow): ~50/50
    deep, shallow = eng.threads
    assert deep.total_runtime == pytest.approx(sec(1), rel=0.15)
    assert shallow.total_runtime == pytest.approx(sec(1), rel=0.15)
