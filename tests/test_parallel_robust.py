"""Failure paths of the hardened parallel runner: raising cells,
timeouts, retries with reseeding, FAILED markers, and the
checkpoint/resume contract (resumed rows byte-identical to an
uninterrupted run)."""

import json
import os
import time
import warnings
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.experiments.checkpoint import CampaignCheckpoint, cell_key
from repro.experiments.parallel import CellError, FailedCell, cell_map


def _double(cell):
    return cell * 2


def _boom_on_negative(cell):
    if cell < 0:
        raise ValueError(f"bad cell {cell}")
    return cell * 2


def _sleep_forever(cell):
    if cell == "stuck":
        time.sleep(60)
    return cell


def _always_boom(cell):
    raise RuntimeError("must not be called")


# ---------------------------------------------------------------- failures


def test_raising_cell_propagates_unwrapped_on_plain_path():
    # No robustness options: the historical behavior, exception and all.
    with pytest.raises(ValueError):
        cell_map(_boom_on_negative, [1, -2, 3])


def test_raising_cell_raises_cell_error_when_not_marking():
    with pytest.raises(CellError) as exc_info:
        cell_map(_boom_on_negative, [1, -2, 3], retries=1, backoff_s=0)
    failure = exc_info.value.failure
    assert failure.cell == -2
    assert failure.reason == "error"
    assert "ValueError" in failure.error
    assert failure.attempts == 2


def test_mark_failures_yields_failed_cell_in_place():
    results = cell_map(_boom_on_negative, [1, -2, 3],
                       mark_failures=True)
    assert results[0] == 2 and results[2] == 6
    failure = results[1]
    assert isinstance(failure, FailedCell)
    assert failure.cell == -2
    assert failure.render().startswith("FAILED(error")


def test_retry_with_reseed_recovers():
    calls = []

    def reseed(cell, attempt):
        calls.append((cell, attempt))
        return -cell  # flip the failing cell positive

    results = cell_map(_boom_on_negative, [1, -2, 3], retries=1,
                       backoff_s=0, reseed=reseed, mark_failures=True)
    # Keyed by the ORIGINAL cell, computed from the reseeded one.
    assert results == [2, 4, 6]
    assert calls == [(-2, 1)]


def test_timeout_cell_is_marked_and_pool_recovers():
    results = cell_map(_sleep_forever, ["a", "stuck", "b"], jobs=2,
                       timeout_s=1.0, mark_failures=True)
    assert results[0] == "a" and results[2] == "b"
    assert isinstance(results[1], FailedCell)
    assert results[1].reason == "timeout"
    assert results[1].render() == "FAILED(timeout)"


# -------------------------------------------------------------- checkpoint


def test_checkpoint_records_only_successes(tmp_path):
    ck = CampaignCheckpoint(tmp_path / "ck.json", meta={"k": 1})
    results = cell_map(_boom_on_negative, [1, -2, 3],
                       mark_failures=True, checkpoint=ck)
    assert isinstance(results[1], FailedCell)
    assert ck.get(1) == 2 and ck.get(3) == 6
    assert ck.get(-2) is ck.MISS  # failures are never checkpointed
    # The manifest survives a "process restart".
    fresh = CampaignCheckpoint(tmp_path / "ck.json", meta={"k": 1})
    assert fresh.load(resume=True) == 2
    assert fresh.get(3) == 6


def test_resume_short_circuits_finished_cells(tmp_path):
    path = tmp_path / "ck.json"
    ck = CampaignCheckpoint(path, meta={})
    cell_map(_double, [1, 2, 3], checkpoint=ck)
    # A "restarted" run: _always_boom would explode if any cell were
    # re-executed, so every row must come from the manifest.
    resumed = CampaignCheckpoint(path, meta={})
    assert resumed.load(resume=True) == 3
    results = cell_map(_always_boom, [1, 2, 3], checkpoint=resumed)
    assert results == [2, 4, 6]


def test_resume_after_partial_run_matches_uninterrupted(tmp_path):
    cells = [1, 2, 3, 4]
    uninterrupted = cell_map(_double, cells)

    # Simulate a campaign killed after two cells: only their results
    # made it into the manifest.
    path = tmp_path / "ck.json"
    partial = CampaignCheckpoint(path, meta={"run": 1})
    cell_map(_double, cells[:2], checkpoint=partial)

    resumed_ck = CampaignCheckpoint(path, meta={"run": 1})
    assert resumed_ck.load(resume=True) == 2
    executed = []

    def counting(cell):
        executed.append(cell)
        return _double(cell)

    resumed = cell_map(counting, cells, checkpoint=resumed_ck)
    assert resumed == uninterrupted  # rows identical, in order
    assert executed == [3, 4]  # only the unfinished cells re-ran


def test_no_resume_clears_a_stale_manifest(tmp_path):
    path = tmp_path / "ck.json"
    ck = CampaignCheckpoint(path, meta={})
    ck.put(1, 999)
    assert path.exists()
    fresh = CampaignCheckpoint(path, meta={})
    assert fresh.load(resume=False) == 0
    assert not path.exists()
    assert fresh.get(1) is fresh.MISS


def test_mismatched_meta_discards_the_manifest(tmp_path):
    path = tmp_path / "ck.json"
    ck = CampaignCheckpoint(path, meta={"seed": 1})
    ck.put("cell", "result")
    other = CampaignCheckpoint(path, meta={"seed": 2})
    assert other.load(resume=True) == 0
    assert other.get("cell") is other.MISS


def test_corrupt_manifest_is_treated_as_empty(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("{ not json !")
    ck = CampaignCheckpoint(path, meta={})
    assert ck.load(resume=True) == 0


def test_cell_key_is_canonical_json():
    assert cell_key({"b": 1, "a": 2}) == cell_key({"a": 2, "b": 1})
    assert cell_key((1, "x")) == cell_key([1, "x"])
    assert cell_key(1) != cell_key("1")


# ------------------------------------------------------- campaign wiring


def test_campaign_resume_report_is_byte_identical(tmp_path):
    """The acceptance criterion, at campaign level: a killed-then-
    resumed campaign renders the same report as an uninterrupted one,
    re-executing only unfinished cells."""
    from repro.experiments.campaign import (build_cells, render_report,
                                            run_campaign,
                                            run_campaign_cell)

    names = ["table1", "table2"]
    ck_path = tmp_path / "campaign.json"
    meta = {"experiments": names, "quick": True, "seed": 1}

    # The uninterrupted reference.
    cells, results = run_campaign(names, quick=True, seed=1)
    reference = render_report(cells, results)

    # "Kill" a campaign after its first cell: manifest holds table1.
    partial = CampaignCheckpoint(ck_path, meta=meta)
    first = build_cells(names, True, 1)[0]
    partial.put(first, run_campaign_cell(first))

    # Resume: table1 must come from the manifest, not re-run.
    import repro.experiments.campaign as campaign_mod
    real_cell = campaign_mod.run_campaign_cell
    executed = []

    def tracking(cell):
        executed.append(cell["experiment"])
        return real_cell(cell)

    campaign_mod.run_campaign_cell = tracking
    try:
        cells2, results2 = run_campaign(
            names, quick=True, seed=1, checkpoint_path=ck_path,
            resume=True)
    finally:
        campaign_mod.run_campaign_cell = real_cell
    assert executed == ["table2"]
    assert render_report(cells2, results2) == reference
    # Fully successful campaign removes its manifest.
    assert not ck_path.exists()


# ------------------------------------------------- journal recovery (v2)


def _journal_lines(path):
    return path.read_text().splitlines()


def test_put_appends_one_journal_line(tmp_path):
    path = tmp_path / "ck.jsonl"
    ck = CampaignCheckpoint(path, meta={"k": 1})
    ck.put(1, 2)
    ck.put(2, 4)
    lines = _journal_lines(path)
    assert len(lines) == 3  # header + one line per cell
    header = json.loads(lines[0])
    assert header["format"].endswith("v2")
    assert header["meta"] == {"k": 1}


def test_truncated_trailing_line_is_recovered_and_compacted(tmp_path):
    path = tmp_path / "ck.jsonl"
    ck = CampaignCheckpoint(path, meta={})
    for cell in (1, 2, 3):
        ck.put(cell, cell * 2)
    # crash mid-append: the journal ends in half a JSON line
    with open(path, "a") as fh:
        fh.write('{"cell": "4", "resu')
    fresh = CampaignCheckpoint(path, meta={})
    with pytest.warns(RuntimeWarning, match="truncated"):
        assert fresh.load(resume=True) == 3
    assert fresh.get(2) == 4
    # the journal was compacted: the torn tail is gone for good
    reloaded = CampaignCheckpoint(path, meta={})
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert reloaded.load(resume=True) == 3


def test_corrupt_middle_line_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "ck.jsonl"
    ck = CampaignCheckpoint(path, meta={})
    ck.put(1, 2)
    ck.put(2, 4)
    lines = _journal_lines(path)
    lines[1] = lines[1][: len(lines[1]) // 2]  # corrupt entry for 1
    path.write_text("\n".join(lines) + "\n")
    fresh = CampaignCheckpoint(path, meta={})
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert fresh.load(resume=True) == 1
    assert fresh.get(1) is fresh.MISS  # lost -> will re-run
    assert fresh.get(2) == 4  # later entries survive the bad line


def test_bitflipped_entry_fails_its_digest_and_is_dropped(tmp_path):
    path = tmp_path / "ck.jsonl"
    ck = CampaignCheckpoint(path, meta={})
    ck.put(1, 1000)
    lines = _journal_lines(path)
    lines[1] = lines[1].replace("1000", "1001")  # still valid JSON
    path.write_text("\n".join(lines) + "\n")
    fresh = CampaignCheckpoint(path, meta={})
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert fresh.load(resume=True) == 0
    assert fresh.get(1) is fresh.MISS  # never served, recomputed


def test_v1_manifest_still_loads(tmp_path):
    path = tmp_path / "ck.json"
    v1 = {"format": "repro-campaign-checkpoint-v1",
          "meta": {"seed": 1},
          "cells": {cell_key(1): 2, cell_key(2): 4}}
    path.write_text(json.dumps(v1, indent=2) + "\n")
    ck = CampaignCheckpoint(path, meta={"seed": 1})
    assert ck.load(resume=True) == 2
    assert ck.get(1) == 2
    # the first write migrates the manifest to the journal format
    ck.put(3, 6)
    header = json.loads(_journal_lines(path)[0])
    assert header["format"].endswith("v2")
    fresh = CampaignCheckpoint(path, meta={"seed": 1})
    assert fresh.load(resume=True) == 3


def test_journal_survives_kill_mid_append(tmp_path):
    """End-to-end: SIGKILL a campaign mid-append; the next load
    recovers every fully-written line instead of raising."""
    import multiprocessing
    import os
    import signal
    import time

    path = tmp_path / "ck.jsonl"

    def writer():
        ck = CampaignCheckpoint(path, meta={})
        i = 0
        while True:
            ck.put(i, {"payload": "x" * 512, "i": i})
            i += 1

    proc = multiprocessing.Process(target=writer)
    proc.start()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            if path.stat().st_size > 64 * 1024:
                break
        except OSError:
            pass
        time.sleep(0.005)
    os.kill(proc.pid, signal.SIGKILL)
    proc.join()
    ck = CampaignCheckpoint(path, meta={})
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # a torn tail may warn
        recovered = ck.load(resume=True)
    assert recovered > 0
    for i in range(recovered):
        assert ck.get(i) == {"payload": "x" * 512, "i": i}


# -------------------------------------------- broken pool (infrastructure)


def _broken_pool_once(cell):
    """Raise BrokenProcessPool on the first run of each cell (the
    flag file marks "already failed once"), succeed after — the shape
    of a worker lost to the OOM killer."""
    flag, value = cell
    if not os.path.exists(flag):
        open(flag, "w").close()
        raise BrokenProcessPool("worker died")
    return value * 2


def _broken_pool_always(cell):
    raise BrokenProcessPool("pool keeps collapsing")


def test_broken_pool_respawns_and_reruns_in_flight_cells(tmp_path):
    cells = [(str(tmp_path / f"flag{i}"), i) for i in range(4)]
    # no retries: the rerun comes from the pool-respawn path, not the
    # per-cell retry budget
    results = cell_map(_broken_pool_once, cells, jobs=2,
                       timeout_s=60, mark_failures=True)
    assert results == [0, 2, 4, 6]


def test_persistently_broken_pool_degrades_to_serial(tmp_path):
    # Serial in-process execution surfaces the exception as an
    # ordinary cell error: the campaign records FAILED rows instead
    # of aborting (and instead of respawning pools forever).
    results = cell_map(_broken_pool_always, [1, 2], jobs=2,
                       timeout_s=60, mark_failures=True)
    assert all(isinstance(r, FailedCell) for r in results)
    assert all(r.reason == "error" for r in results)
    assert "BrokenProcessPool" in results[0].error


def test_broken_pool_cells_checkpoint_after_respawn(tmp_path):
    ck = CampaignCheckpoint(tmp_path / "ck.jsonl", meta={})
    cells = [(str(tmp_path / f"f{i}"), i) for i in range(3)]
    results = cell_map(_broken_pool_once, cells, jobs=2,
                       timeout_s=60, mark_failures=True,
                       checkpoint=ck)
    assert results == [0, 2, 4]
    assert all(ck.get(cell) == cell[1] * 2 for cell in cells)
