"""Smoke and correctness tests for the experiment drivers.

The heavyweight assertions live in benchmarks/ (one bench per table/
figure); here we validate the drivers' structure and the fast
experiments' headline claims.
"""

import pytest

from repro.experiments import (EXPERIMENTS, experiment_names,
                               run_experiment)
from repro.experiments import fibo_sysbench, table1_api
from repro.experiments.base import make_engine


def test_registry_covers_all_tables_and_figures():
    names = set(experiment_names())
    assert names == {"table1", "table2", "fig1", "fig2", "fig3", "fig4",
                     "fig5", "fig6", "fig7", "fig8", "fig9", "i7",
                     "sensitivity", "latency", "predict"}


def test_unknown_experiment_raises():
    from repro.core.errors import ExperimentError
    with pytest.raises(ExperimentError):
        run_experiment("fig42")


def test_make_engine_topologies():
    assert len(make_engine("fifo", ncpus=1).machine) == 1
    eng32 = make_engine("fifo", ncpus=32)
    assert len(eng32.machine) == 32
    assert len(eng32.machine.topology.level("numa").groups) == 4
    assert len(make_engine("fifo", ncpus=4).machine) == 4


def test_table1_driver():
    result = table1_api.run()
    assert len(result.rows) == 6
    assert all(result.data["exercised"].values())
    assert "sched_add / sched_wakeup" in result.text


def test_table2_driver_claims():
    result = run_experiment("table2")
    assert result.data["tps_ratio"] > 1.3
    assert result.data["latency_ratio"] > 2.0
    # rows carry both schedulers' numbers
    metrics = {r["metric"] for r in result.rows}
    assert any("Transactions" in m for m in metrics)


def test_fibo_sysbench_scenario_outcome_fields():
    out = fibo_sysbench.run_scenario("ule", seed=2)
    assert out.fibo_runtime_s > 10
    assert out.sysbench_tps > 100
    assert out.sysbench_completion_s is not None
    assert out.engine.metrics.has_series("runtime.fibo")


def test_fig1_starvation_gap():
    result = run_experiment("fig1")
    assert result.data["ule_stall_s"] > result.data["cfs_stall_s"] + 3


def test_fig2_classification():
    result = run_experiment("fig2")
    assert result.data["fibo_max_penalty"] > 90
    assert result.data["sysb_steady_penalty"] < 30


def test_fig3_fig4_starvation_counts_consistent():
    r3 = run_experiment("fig3")
    assert r3.data["ule_starved"] > 20
    assert r3.data["cfs_starved"] == 0
    r4 = run_experiment("fig4")
    assert len(r4.data["starved_pens"]) > 20
    # starved threads keep high penalties, executed ones low
    assert min(r4.data["starved_pens"]) > max(
        0, min(r4.data["executed_pens"]))


def test_experiment_result_row_helper():
    from repro.experiments.base import ExperimentResult
    result = ExperimentResult("x", "claim")
    result.row(a=1, b=2)
    assert result.rows == [{"a": 1, "b": 2}]
