"""The batched PELT fold layer (repro/cfs/peltbank.py).

The load-bearing property is **bit-identity**: folding a bank must
reproduce, bit for bit, the sum of walking the averages and peeking
each one (that is what keeps the flat balancer digest-identical to
the per-thread walk), and the optional numpy kernel must reproduce
the python kernel exactly.  The inline copy of the fold inside
``CfsScheduler.loads_for`` is pinned against the module kernel by the
engine-level digests (tests/test_flat_timeline.py, golden traces).
"""

import random

import pytest

from repro.cfs import peltbank
from repro.cfs.pelt import HALF_LIFE_NS, LoadAvg
from repro.cfs.peltbank import (fold_loads_numpy, fold_loads_python,
                                numpy_enabled)


def _bank(seed, n, now):
    """A reproducible bank of ``n`` averages in assorted regimes:
    fresh, mid-decay, beyond the half-life, saturated, zero-delta."""
    rng = random.Random(f"peltbank:{seed}")
    avgs, weights = [], []
    for i in range(n):
        avg = LoadAvg()
        regime = rng.randrange(5)
        if regime == 0:       # fresh, partially ramped
            avg.util_avg = rng.random()
            avg.last_update = now - rng.randrange(1, HALF_LIFE_NS // 4)
        elif regime == 1:     # deep decay, past several half-lives
            avg.util_avg = rng.random()
            avg.last_update = now - rng.randrange(
                HALF_LIFE_NS, 8 * HALF_LIFE_NS)
        elif regime == 2:     # saturated inside the shortcut window
            avg.util_avg = 1.0
            avg.last_update = now - rng.randrange(1, HALF_LIFE_NS)
        elif regime == 3:     # saturated but stale beyond the window
            avg.util_avg = 1.0
            avg.last_update = now - rng.randrange(
                HALF_LIFE_NS, 3 * HALF_LIFE_NS)
        else:                 # updated at this very instant
            avg.util_avg = rng.random()
            avg.last_update = now
        weight = rng.choice((1024, 335, 3121, 88761))
        avg.weight = weight
        avgs.append(avg)
        weights.append(weight)
    return avgs, tuple(weights)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("n", (0, 1, 2, 7, 40))
def test_python_fold_matches_sequential_peek(seed, n):
    now = 10 * HALF_LIFE_NS
    avgs, weights = _bank(seed, n, now)
    load, saturated, min_lu = fold_loads_python(avgs, weights, now)
    expected = 0.0
    for avg in avgs:
        expected += avg.peek(now, True)  # peek returns u * weight
    assert load == expected  # bit-identical, not approximately
    assert min_lu <= now


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("n", (0, 1, 2, 7, 40))
def test_numpy_fold_matches_python_fold(seed, n):
    pytest.importorskip("numpy")
    now = 10 * HALF_LIFE_NS
    avgs, weights = _bank(seed, n, now)
    assert fold_loads_numpy(avgs, weights, now) == \
        fold_loads_python(avgs, weights, now)


def test_saturated_flag_only_when_every_term_is_invariant():
    now = 10 * HALF_LIFE_NS
    sat = LoadAvg()
    sat.util_avg = 1.0
    sat.last_update = now - HALF_LIFE_NS // 2
    _, saturated, min_lu = fold_loads_python([sat], (1024,), now)
    assert saturated
    assert min_lu == sat.last_update
    ramping = LoadAvg()
    ramping.util_avg = 0.5
    ramping.last_update = now - HALF_LIFE_NS // 2
    _, saturated, _ = fold_loads_python([sat, ramping], (1024, 1024),
                                        now)
    assert not saturated


def test_empty_bank_folds_to_zero():
    assert fold_loads_python([], (), 123) == (0.0, True, 123)


def test_numpy_probe_requires_opt_in(monkeypatch):
    """The numpy kernel is an explicit opt-in: ``REPRO_NUMPY`` unset,
    empty, or falsy keeps the python kernel even with numpy present."""
    for value in ("", "0", "false", "no", "off", "False"):
        monkeypatch.setenv("REPRO_NUMPY", value)
        assert not numpy_enabled()
    monkeypatch.delenv("REPRO_NUMPY")
    assert not numpy_enabled()
    monkeypatch.setenv("REPRO_NUMPY", "1")
    try:
        import numpy  # noqa: F401
        assert numpy_enabled()
    except ImportError:  # pragma: no cover - numpy normally present
        assert not numpy_enabled()


def test_active_kernel_selected_from_probe():
    """``fold_loads`` is bound once at import; with the default
    environment that is the python kernel."""
    assert peltbank.fold_loads in (fold_loads_python, fold_loads_numpy)
