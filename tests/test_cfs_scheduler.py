"""Integration tests for the CFS scheduler running in the engine."""

import pytest

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec
from repro.core.topology import opteron_6172, single_core, smp
from repro.sched import scheduler_factory


def make_engine(ncpus=1, **sched_kw):
    if ncpus == 1:
        topo = single_core()
    elif ncpus == 32:
        topo = opteron_6172()
    else:
        topo = smp(ncpus)
    return Engine(topo, scheduler_factory("cfs", **sched_kw), seed=1)


def spin(ctx):
    yield run_forever()


def compute(duration):
    def behavior(ctx):
        yield Run(duration)
    return behavior


def test_single_thread_runs():
    eng = make_engine()
    t = eng.spawn(ThreadSpec("solo", compute(msec(50))))
    assert eng.run(until=sec(2)) == "all-exited"
    assert t.total_runtime == msec(50)


def test_equal_threads_share_fairly():
    eng = make_engine()
    # Same app so they share one cgroup -> pure thread fairness.
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, app="app"))
          for i in range(4)]
    eng.run(until=sec(2))
    runtimes = [t.total_runtime for t in ts]
    mean = sum(runtimes) / 4
    assert mean == pytest.approx(sec(2) / 4, rel=0.05)
    for rt in runtimes:
        assert rt == pytest.approx(mean, rel=0.10)


def test_nice_weighting_shifts_share():
    eng = make_engine()
    hi = eng.spawn(ThreadSpec("hi", spin, nice=-5, app="app"))
    lo = eng.spawn(ThreadSpec("lo", spin, nice=5, app="app"))
    eng.run(until=sec(2))
    # weight(-5)=3121, weight(5)=335 -> ratio ~9.3
    ratio = hi.total_runtime / lo.total_runtime
    assert 6.0 < ratio < 13.0


def test_cgroup_fairness_between_apps():
    """One single-threaded app vs one 10-threaded app: with autogroup
    each app gets ~half the core (fibo-vs-sysbench in Table 2)."""
    eng = make_engine()
    solo = eng.spawn(ThreadSpec("solo", spin, app="solo"))
    herd = [eng.spawn(ThreadSpec(f"h{i}", spin, app="herd"))
            for i in range(10)]
    eng.run(until=sec(4))
    herd_total = sum(t.total_runtime for t in herd)
    assert solo.total_runtime == pytest.approx(sec(2), rel=0.12)
    assert herd_total == pytest.approx(sec(2), rel=0.12)


def test_no_autogroup_gives_per_thread_fairness():
    eng = make_engine(autogroup=False)
    solo = eng.spawn(ThreadSpec("solo", spin, app="solo"))
    herd = [eng.spawn(ThreadSpec(f"h{i}", spin, app="herd"))
            for i in range(9)]
    eng.run(until=sec(2))
    # 10 equal threads, no grouping: solo gets ~1/10 (tolerance covers
    # slice-boundary truncation at the 2 s cutoff).
    assert solo.total_runtime == pytest.approx(sec(2) / 10, rel=0.25)


def test_vruntime_spread_bounded():
    """CFS keeps every thread scheduled within the period: no thread
    starves (contrast with ULE)."""
    eng = make_engine()
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, app="app"))
          for i in range(6)]
    eng.run(until=sec(1))
    # all six made progress in the first second
    for t in ts:
        assert t.total_runtime > msec(50)


def test_sleeper_scheduled_promptly_on_wake():
    """A mostly-sleeping thread gets the CPU quickly when it wakes
    (min-vruntime placement + wakeup preemption).  Wake latency shows
    up as the thread's accumulated runnable-wait time."""
    from repro.core.clock import usec
    eng = make_engine()
    eng.spawn(ThreadSpec("hog", spin, app="hog"))

    def sleeper(ctx):
        for _ in range(20):
            yield Sleep(msec(10) + usec(137))
            yield Run(usec(500))

    t = eng.spawn(ThreadSpec("interactive", sleeper, app="ia"))
    # warm up past the initial queue wait, then measure
    eng.run(until=msec(100))
    baseline = t.total_waittime
    eng.run(until=sec(2))
    wakeups = 20 - 100 // 11  # cycles measured after warm-up
    assert (t.total_waittime - baseline) / wakeups < usec(100)


def test_wakeup_preemption_disabled_increases_latency():
    from repro.core.clock import usec

    def run_one(preempt):
        eng = make_engine(wakeup_preemption=preempt)
        eng.spawn(ThreadSpec("hog", spin, app="hog"))

        def sleeper(ctx):
            for _ in range(20):
                # unaligned sleeps so wakes land between ticks
                yield Sleep(msec(10) + usec(137))
                yield Run(usec(500))

        t = eng.spawn(ThreadSpec("interactive", sleeper, app="ia"))
        eng.run(until=msec(100))  # warm up past the initial queue wait
        baseline = t.total_waittime
        eng.run(until=sec(2))
        wakeups = 20 - 100 // 11
        return ((t.total_waittime - baseline) / wakeups,
                eng.metrics.counter("cfs.wakeup_preemptions"))

    wait_on, preempts_on = run_one(True)
    wait_off, preempts_off = run_one(False)
    assert preempts_on > 0
    assert preempts_off == 0
    # wakeup preemption runs the woken sleeper immediately; without it
    # the sleeper waits for the next tick-driven check
    assert wait_on < wait_off
    assert wait_on < usec(50)


def test_fork_placement_spreads_on_idle_cpus():
    eng = make_engine(ncpus=4)
    done = []

    def master(ctx):
        from repro.core.actions import Fork
        for i in range(4):
            yield Fork(ThreadSpec(f"child{i}", spin, app="app"))
        done.append(True)
        yield Run(msec(1))

    eng.spawn(ThreadSpec("master", master, app="app"))
    eng.run(until=msec(200))
    children = eng.threads_named("child")
    cpus = {t.cpu for t in children}
    assert len(cpus) >= 3  # spread across the idle machine


def test_idle_balance_pulls_work():
    eng = make_engine(ncpus=4)
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, app="app",
                               affinity=frozenset({0})))
          for i in range(8)]
    eng.run(until=msec(20))
    for t in ts:
        eng.set_affinity(t, None)
    eng.run(until=msec(500))
    counts = [eng.nr_runnable_on(c) for c in range(4)]
    assert counts == [2, 2, 2, 2]


def test_numa_imbalance_tolerated():
    """Across NUMA nodes CFS accepts up to ~25% imbalance (Fig. 6's
    15-vs-18 outcome)."""
    eng = make_engine(ncpus=32)
    # 2 spinners per core in node 0 plus 1 extra per core: make node0
    # carry 20% more than node1 -> should NOT be rebalanced.
    for cpu in range(8):
        for j in range(6 if cpu < 4 else 5):
            eng.spawn(ThreadSpec(f"a{cpu}-{j}", spin, app="app",
                                 affinity=frozenset({cpu})))
    eng.run(until=msec(50))
    for t in eng.threads:
        eng.set_affinity(t, None)
    eng.run(until=sec(3))
    node0 = sum(eng.nr_runnable_on(c) for c in range(8))
    node_rest = sum(eng.nr_runnable_on(c) for c in range(8, 32))
    # everything spread out but some imbalance may remain
    assert node_rest > 0
    total = node0 + node_rest
    assert total == 44


def test_yield_lets_peer_run():
    eng = make_engine()
    order = []

    def politer(ctx):
        from repro.core.actions import Yield
        for _ in range(3):
            yield Run(msec(1))
            order.append(ctx.thread.name)
            yield Yield()

    eng.spawn(ThreadSpec("y1", politer, app="app"))
    eng.spawn(ThreadSpec("y2", politer, app="app"))
    eng.run(until=sec(1))
    assert len(order) == 6
    assert set(order[:2]) == {"y1", "y2"}


def test_runnable_threads_reporting():
    eng = make_engine()
    eng.spawn(ThreadSpec("a", spin, app="x"))
    eng.spawn(ThreadSpec("b", spin, app="y"))
    eng.run(until=msec(10))
    core = eng.machine.cores[0]
    names = sorted(t.name for t in eng.scheduler.runnable_threads(core))
    assert names == ["a", "b"]
    assert eng.scheduler.nr_runnable(core) == 2


def test_migration_preserves_fairness():
    """Threads migrated between CPUs do not gain or lose vruntime
    (min_vruntime normalization)."""
    eng = make_engine(ncpus=2)
    ts = [eng.spawn(ThreadSpec(f"w{i}", spin, app="app"))
          for i in range(4)]
    eng.run(until=sec(2))
    runtimes = sorted(t.total_runtime for t in ts)
    assert runtimes[0] > runtimes[-1] * 0.8
