"""Legacy setup shim.

The sandbox has setuptools without the ``wheel`` package, so PEP-517
editable installs (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
"""

from setuptools import setup

setup()
