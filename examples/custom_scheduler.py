#!/usr/bin/env python3
"""Write your own scheduler and race it against CFS and ULE.

The engine accepts any :class:`repro.sched.base.SchedClass`
implementation — the same interface the paper's Table 1 describes.
This example implements a tiny *lottery scheduler* (tickets
proportional to nice weight, winner picked per slice) in ~80 lines,
registers it, and compares all three schedulers on a mixed workload.

    $ python examples/custom_scheduler.py
"""

from repro.core import Engine, Run, Sleep, ThreadSpec
from repro.core.clock import msec, sec
from repro.core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from repro.core.topology import smp
from repro.sched import SchedClass, register_scheduler, scheduler_factory


class LotteryRunqueue:
    def __init__(self):
        self.threads = []
        self.slice_used = 0


class LotteryScheduler(SchedClass):
    """Probabilistic proportional share: each slice, draw a winner
    weighted by (20 - nice) tickets."""

    name = "lottery"

    def __init__(self, engine, timeslice_ns=msec(10)):
        super().__init__(engine)
        self.timeslice_ns = timeslice_ns
        self._rng = engine.random.stream("lottery")

    def init_core(self, core):
        return LotteryRunqueue()

    def enqueue_task(self, core, thread, flags):
        core.rq.threads.append(thread)

    def dequeue_task(self, core, thread, flags):
        core.rq.threads.remove(thread)

    def pick_next(self, core):
        rq = core.rq
        if not rq.threads:
            return None
        total = sum(20 - t.nice for t in rq.threads)
        draw = self._rng.uniform(0.0, total)
        acc = 0.0
        for thread in rq.threads:
            acc += 20 - thread.nice
            if draw <= acc:
                rq.slice_used = 0
                return thread
        return rq.threads[-1]

    def select_task_rq(self, thread, flags, waker=None):
        candidates = [c for c in self.machine.cores
                      if thread.allows_cpu(c.index)]
        return min(candidates,
                   key=lambda c: (len(c.rq.threads), c.index)).index

    def task_tick(self, core):
        core.rq.slice_used += self.tick_ns
        if len(core.rq.threads) > 1 \
                and core.rq.slice_used >= self.timeslice_ns:
            core.need_resched = True

    def runnable_threads(self, core):
        return list(core.rq.threads)


def mixed_workload(engine):
    def hog(ctx):
        while True:
            yield Run(msec(20))

    def sleeper(ctx):
        while True:
            yield Sleep(msec(8))
            yield Run(msec(2))

    threads = []
    threads.append(engine.spawn(ThreadSpec("hog-nice0", hog, nice=0)))
    threads.append(engine.spawn(ThreadSpec("hog-nice10", hog, nice=10)))
    threads.append(engine.spawn(ThreadSpec("sleeper", sleeper)))
    return threads


def main() -> None:
    register_scheduler(
        "lottery", lambda engine, **kw: LotteryScheduler(engine, **kw))

    for sched in ("cfs", "ule", "lottery"):
        engine = Engine(smp(2), scheduler_factory(sched), seed=42)
        threads = mixed_workload(engine)
        engine.run(until=sec(10))
        shares = {t.name: 100.0 * t.total_runtime / engine.now
                  for t in threads}
        formatted = "  ".join(f"{k}={v:4.1f}%" for k, v in shares.items())
        print(f"{sched:<8} {formatted}")


if __name__ == "__main__":
    main()
