#!/usr/bin/env python3
"""Load-balancer race: the paper's Fig. 6, live.

128 spinning threads are pinned to core 0 of a 32-core NUMA machine,
then released with ``taskset``.  Watch each scheduler redistribute
them:

* CFS storms the pile within a fraction of a second (stealing up to 32
  threads per balancing pass) but leaves a residual imbalance across
  NUMA nodes — it tolerates up to ~25 %.
* ULE's idle cores steal exactly one thread each; afterwards core 0's
  periodic balancer migrates roughly one thread per 0.5-1.5 s
  invocation — slow, but the final balance is perfect.

    $ python examples/load_balancer_race.py
"""

from repro.analysis.convergence import balance_predicate, current_counts
from repro.core.clock import msec, sec, to_sec
from repro.experiments.base import make_engine
from repro.tracing import heatmap, sample_threads_per_core
from repro.workloads import SpinnerWorkload

NTHREADS = 128
UNPIN_AT = sec(1)


def race(sched_name: str, budget_ns: int) -> None:
    engine = make_engine(sched_name, ncpus=32)
    spinners = SpinnerWorkload(count=NTHREADS, pin_cpu=0,
                               unpin_at=UNPIN_AT)
    spinners.launch(engine, at=0)
    sample_threads_per_core(engine, msec(250))

    balanced = balance_predicate(tolerance=1)
    reason = engine.run(
        until=budget_ns,
        stop_when=lambda e: e.now > UNPIN_AT + msec(500) and balanced(e),
        check_interval=128)

    counts = current_counts(engine)
    print(f"--- {sched_name.upper()} ---")
    print(heatmap(engine.metrics, 32, vmax=3 * NTHREADS // 32))
    print(f"  threads per core now: min={min(counts)} "
          f"max={max(counts)}  (perfect would be {NTHREADS // 32})")
    print(f"  migrations: "
          f"{engine.metrics.counter('engine.migrations'):.0f}, "
          f"simulated time: {to_sec(engine.now):.1f} s ({reason})")
    invocations = engine.metrics.counter("ule.balance_invocations")
    if invocations:
        print(f"  ULE balancer invocations: {invocations:.0f} "
              f"(~1 thread each)")
    print()


def main() -> None:
    print(f"{NTHREADS} spinners pinned to core 0, released at "
          f"{to_sec(UNPIN_AT):.0f}s\n")
    race("cfs", budget_ns=sec(6))
    race("ule", budget_ns=sec(400))


if __name__ == "__main__":
    main()
