#!/usr/bin/env python3
"""Starvation demo: reproduce the paper's §5.1 headline result live.

A CPU hog (fibo) shares one core with a swarm of mostly-sleeping
database threads.  Under CFS both applications share the core fairly;
under ULE the hog is classified batch and starves, unboundedly, while
the interactive swarm runs — which *helps* the database's throughput
and latency (the paper's Table 2).

    $ python examples/starvation_demo.py
"""

from repro.core.clock import msec, sec, to_msec, to_sec
from repro.experiments.base import make_engine
from repro.workloads import FiboWorkload, SysbenchWorkload


def run(sched_name: str) -> None:
    engine = make_engine(sched_name, ncpus=1)
    fibo = FiboWorkload(work_ns=sec(8))
    sysbench = SysbenchWorkload(nthreads=80,
                                transactions_per_thread=50)
    fibo.launch(engine, at=0)
    sysbench.launch(engine, at=msec(500))
    engine.run(until=sec(60),
               stop_when=lambda e: fibo.done(e) and sysbench.done(e))

    hog = fibo.thread
    print(f"--- {sched_name.upper()} ---")
    print(f"  sysbench: {sysbench.throughput(engine):7.0f} tx/s, "
          f"avg latency "
          f"{to_msec(sysbench.mean_latency_ns(engine)):6.2f} ms")
    print(f"  fibo:     finished at {to_sec(hog.exited_at):5.2f} s")
    if sched_name == "ule":
        pen = hog.policy.hist.penalty()
        starved = sysbench.starved_workers(engine)
        print(f"  fibo's final interactivity penalty: {pen} "
              f"(batch above 30)")
        print(f"  sysbench workers that never ran: {len(starved)} "
              f"of {len(sysbench.workers)}")
    print()


def main() -> None:
    print("fibo (CPU hog) + sysbench (80 mostly-sleeping threads), "
          "one core\n")
    run("cfs")
    run("ule")
    print("Note how ULE delivers roughly twice the sysbench throughput "
          "at a fraction\nof the latency -- by starving fibo outright "
          "until sysbench finishes.")


if __name__ == "__main__":
    main()
