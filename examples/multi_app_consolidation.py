#!/usr/bin/env python3
"""Server consolidation study: what happens when you co-locate a
latency-sensitive service with a batch job on each scheduler?

This is the practical question behind the paper's §6.4: a web service
(apache-like worker pool) shares a 32-core box with an HPC batch job
(an MG-like spin-barrier kernel).  We report the service's latency
percentiles and the batch job's slowdown under CFS and ULE.

    $ python examples/multi_app_consolidation.py
"""

from repro.core.clock import msec, sec, to_msec, usec
from repro.experiments.base import make_engine
from repro.workloads.base import ServerWorkload
from repro.workloads.nas import mg


def consolidate(sched_name: str):
    engine = make_engine(sched_name, ncpus=32,
                         ctx_switch_cost_ns=usec(5))
    service = ServerWorkload(app="webapp", nworkers=64,
                             service_ns=usec(500), nclients=8,
                             think_ns=msec(2), outstanding=64,
                             total_requests=30_000)
    batch = mg()
    service.launch(engine, at=0)
    batch.launch(engine, at=0)
    engine.run(until=sec(60),
               stop_when=lambda e: service.done(e) and batch.done(e),
               check_interval=64)

    latency = engine.metrics.latency("webapp.latency")
    return {
        "throughput": service.throughput(engine),
        "p50_ms": to_msec(latency.p50),
        "p99_ms": to_msec(latency.p99),
        "batch_perf": batch.performance(engine),
    }


def main() -> None:
    print("webapp (64 workers, 0.5 ms requests) + MG (32 spin-barrier "
          "threads), 32 cores\n")
    results = {}
    for sched in ("cfs", "ule"):
        r = consolidate(sched)
        results[sched] = r
        print(f"{sched.upper():<4} webapp: {r['throughput']:7.0f} req/s  "
              f"p50={r['p50_ms']:6.2f} ms  p99={r['p99_ms']:6.2f} ms  |  "
              f"MG: {r['batch_perf']:.2f} iterations/s")
    print()
    cfs, ule = results["cfs"], results["ule"]
    print(f"MG is {100 * (ule['batch_perf'] / cfs['batch_perf'] - 1):+.0f}% "
          f"on ULE; webapp p99 is "
          f"{ule['p99_ms'] / max(1e-9, cfs['p99_ms']):.1f}x CFS's.")
    print("ULE protects whichever side it classifies interactive; CFS "
          "splits the machine\nby load and absorbs wakeups with "
          "preemption.")


if __name__ == "__main__":
    main()
