#!/usr/bin/env python3
"""Quickstart: run two threads under CFS and under ULE and compare.

This is the smallest end-to-end use of the library: build a machine,
pick a scheduler, describe thread behaviour as a generator, run, and
inspect the accounting.

    $ python examples/quickstart.py
"""

from repro import Engine, Run, Sleep, ThreadSpec, single_core
from repro.core.clock import msec, sec, to_msec
from repro.sched import scheduler_factory


def cpu_hog(ctx):
    """Burn CPU forever (what the paper calls a batch thread)."""
    while True:
        yield Run(msec(10))


def interactive(ctx):
    """Mostly sleep, briefly run — a latency-sensitive thread."""
    while True:
        yield Sleep(msec(9))
        yield Run(msec(1))


def main() -> None:
    for sched_name in ("cfs", "ule"):
        engine = Engine(single_core(), scheduler_factory(sched_name))
        hog = engine.spawn(ThreadSpec("hog", cpu_hog, app="hog"))
        ia = engine.spawn(ThreadSpec("ia", interactive, app="ia"))

        engine.run(until=sec(10))

        print(f"--- {sched_name.upper()} (one core, 10 s) ---")
        for t in (hog, ia):
            share = 100.0 * t.total_runtime / engine.now
            avg_wait = (t.total_waittime / max(1, t.nr_switches))
            print(f"  {t.name:<4} cpu={share:5.1f}%  "
                  f"avg wait per schedule={to_msec(avg_wait):6.3f} ms  "
                  f"switches={t.nr_switches}")
        print()


if __name__ == "__main__":
    main()
