#!/usr/bin/env python3
"""Record a schedule and export it for chrome://tracing / Perfetto.

Attach a TraceLog, run the Table 2 scenario under ULE, and write a
Chrome Trace Event file.  Open the JSON at https://ui.perfetto.dev to
see per-CPU swimlanes of every scheduled interval, wakeup, and
migration — the starvation of fibo is a single uninterrupted gap.

    $ python examples/trace_visualization.py [output.json]
"""

import sys

from repro.core.clock import msec, sec
from repro.experiments.base import make_engine
from repro.tracing import TraceLog
from repro.workloads import FiboWorkload, SysbenchWorkload


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "ule_schedule.json"

    engine = make_engine("ule", ncpus=1)
    log = TraceLog(engine)

    fibo = FiboWorkload(work_ns=sec(2))
    sysbench = SysbenchWorkload(nthreads=16, wait_ns=msec(10),
                                transactions_per_thread=40)
    fibo.launch(engine, at=0)
    sysbench.launch(engine, at=msec(200))
    engine.run(until=sec(6),
               stop_when=lambda e: fibo.done(e) and sysbench.done(e))

    log.write_chrome_trace(output)

    intervals = log.intervals()
    fibo_spans = log.timeline_of("fibo/0")
    print(f"simulated {engine.now / 1e9:.2f}s; "
          f"{len(intervals)} scheduled intervals, "
          f"{len(log.wakes)} wakeups, {len(log.migrations)} migrations")
    print(f"fibo was scheduled {len(fibo_spans)} times; longest gap "
          f"between its slices:")
    gaps = [(b[2] - a[3]) for a, b in zip(fibo_spans, fibo_spans[1:])]
    if gaps:
        print(f"  {max(gaps) / 1e6:.1f} ms "
              f"(the ULE starvation window)")
    print(f"trace written to {output} — open it at "
          f"https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
