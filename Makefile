# Developer entry points.  PYTHONPATH=src everywhere: the package is
# run from the source tree, no install step needed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-baseline bench-full

## tier-1 test suite (the gate every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## simulator-performance benchmarks in smoke mode + regression gate:
## fails when any profile's events/sec is >2x below the recorded
## baseline (benchmarks/BENCH_baseline.json)
bench:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_simulator_performance.py -q
	$(PYTHON) benchmarks/check_bench.py

## re-record the smoke baseline after an intentional perf change
bench-baseline:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_simulator_performance.py -q
	cp benchmarks/BENCH_simulator.json benchmarks/BENCH_baseline.json
	@echo "baseline re-recorded"

## full-size benchmark profiles (slower, prints throughput)
bench-full:
	$(PYTHON) -m pytest benchmarks/test_simulator_performance.py -q
