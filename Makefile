# Developer entry points.  PYTHONPATH=src everywhere: the package is
# run from the source tree, no install step needed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# minimum line-coverage percentage for `make coverage` (the recorded
# tier-1 state; CI fails below it)
COVER_MIN ?= 80

.PHONY: test test-all lint lint-baseline sanitize-smoke fuzz-smoke \
	chaos-smoke shard-chaos-smoke golden golden-check coverage \
	verify verify-fast bench bench-baseline bench-full bench-smoke \
	bench-shard bench-profile

## tier-1 test suite (the gate every PR must keep green); pyproject
## addopts exclude @pytest.mark.slow tests — see `make test-all`
test:
	$(PYTHON) -m pytest -x -q

## the full suite including the slow example/fig-sweep tests
test-all:
	$(PYTHON) -m pytest -q -m "slow or not slow"

## schedlint: determinism/contract static analysis over src/repro/
## at the dataflow tier (interprocedural taint, fast-path parity,
## cross-process atomicity), failing on any finding not recorded in
## lint-baseline.json; writes lint-report.sarif for CI upload
## (exit 0 = clean, 1 = findings, 2 = usage/internal error; see
## docs/static-analysis.md)
lint:
	$(PYTHON) -m repro.analysis.lint --dataflow \
		--baseline lint-baseline.json --sarif lint-report.sarif

## accept the current dataflow-tier findings into the baseline
## (review the diff before committing — the baseline should only
## shrink over time)
lint-baseline:
	$(PYTHON) -m repro.analysis.lint --dataflow \
		--baseline lint-baseline.json --update-baseline

## runtime invariant sanitizer: bug-injection tests plus one fig5
## smoke cell per scheduler under --sanitize
sanitize-smoke:
	$(PYTHON) -m pytest tests/test_sanitizer.py -q

## bounded fuzz budget: 25 seeded scenarios through the differential
## oracles under every scheduler, with Engine(sanitize=True)
## (see docs/testing.md)
fuzz-smoke:
	$(PYTHON) -m repro.testing fuzz --seeds 25 --smoke
	$(PYTHON) -m repro.testing fuzz --seeds 10 --smoke \
		--schedulers cfs,eevdf,bfs,lottery,staticprio,predictive

## fault-injection smoke: one fig5 cell per scheduler under the
## canned chaos plan plus a 4-CPU hotplug drain/rebalance cell, all
## with the runtime sanitizer on (see docs/fault-injection.md)
chaos-smoke:
	$(PYTHON) -m repro.faults smoke

## shard-executor chaos gate: SIGKILL the sharded campaign's
## supervisor and three of its workers mid-sweep, resume, and assert
## the merged report is byte-identical to an uninterrupted serial run
## (see docs/distributed-campaigns.md)
shard-chaos-smoke:
	$(PYTHON) -m repro.faults shard-chaos

## re-record the golden-trace digests after an intentional
## behavioural change (mirrors bench-baseline for performance)
golden:
	$(PYTHON) -m repro.testing golden record

## compare fresh experiment-cell digests against tests/golden/
## (cell-cached: a repeat against unchanged sources replays stored
## digests — the cache key includes a fingerprint of src/repro, so
## any code change recomputes; see docs/performance.md)
golden-check:
	REPRO_CELL_CACHE=1 $(PYTHON) -m repro.testing golden check

## tier-1 line coverage with a regression floor; skips cleanly when
## coverage.py is not installed (it is not vendored)
coverage:
	@$(PYTHON) -c "import coverage" 2>/dev/null || \
		{ echo "coverage.py not installed; skipping coverage gate"; \
		  exit 0; } && \
	$(PYTHON) -m coverage run --source=src/repro -m pytest -q && \
	$(PYTHON) -m coverage report --fail-under=$(COVER_MIN)

## the full PR gate.  Stages keep going on failure so every problem is
## reported in one run, and bench runs LAST deliberately: a perf
## regression must still be visible when lint or a test already
## failed.  The exit status aggregates all stages.
verify:
	@fail=0; \
	for stage in lint test sanitize-smoke fuzz-smoke chaos-smoke \
			shard-chaos-smoke bench-smoke bench; do \
		echo "== make $$stage =="; \
		$(MAKE) --no-print-directory $$stage || fail=1; \
	done; \
	if [ $$fail -ne 0 ]; then echo "verify: FAILED (see above)"; fi; \
	exit $$fail

## inner-loop gate: static analysis + tier-1 tests, fail fast
verify-fast: lint test

## simulator-performance benchmarks in smoke mode + regression gate:
## fails when any profile's events/sec is >1.5x below the recorded
## baseline (benchmarks/BENCH_baseline.json).  REPRO_FAST=1: the
## benchmarks measure the specialized run loop (the production
## configuration for uninstrumented runs; digest-identical to the
## instrumented loop — see docs/performance.md)
bench:
	REPRO_BENCH_SMOKE=1 REPRO_FAST=1 $(PYTHON) -m pytest \
		benchmarks/test_simulator_performance.py -q
	$(PYTHON) benchmarks/check_bench.py

## re-record the smoke baseline after an intentional perf change
bench-baseline:
	REPRO_BENCH_SMOKE=1 REPRO_FAST=1 $(PYTHON) -m pytest \
		benchmarks/test_simulator_performance.py -q
	cp benchmarks/BENCH_simulator.json benchmarks/BENCH_baseline.json
	@echo "baseline re-recorded"

## full-size benchmark profiles (slower, prints throughput)
bench-full:
	REPRO_FAST=1 $(PYTHON) -m pytest \
		benchmarks/test_simulator_performance.py -q

## fast heap-vs-wheel gate: fixed scenarios under both event queues,
## asserts digest equality + a minimum events/sec floor (CI stage).
## Both legs run — the instrumented loop and the specialized fast
## loop (REPRO_FAST=1) — so a floor violation or digest drift in
## either run path fails the gate.
bench-smoke:
	REPRO_FAST=0 $(PYTHON) benchmarks/bench_smoke.py
	REPRO_FAST=1 $(PYTHON) benchmarks/bench_smoke.py

## per-subsystem event-profile breakdown over a representative
## campaign slice (fig6: both schedulers' tick + balance paths),
## written to benchmarks/BENCH_profile.txt; CI uploads it alongside
## the trajectory so "where does the time go" is recorded per PR
bench-profile:
	$(PYTHON) -m repro.experiments run fig6 --profile --no-cache \
		> /dev/null 2> benchmarks/BENCH_profile.txt || \
		{ cat benchmarks/BENCH_profile.txt; exit 1; }
	@cat benchmarks/BENCH_profile.txt

## shard-executor scaling: cells/sec + events/sec at 1, 2 and N
## workers, appended to benchmarks/BENCH_trajectory.json (smoke:
## "shard" entries; see docs/distributed-campaigns.md)
bench-shard:
	$(PYTHON) benchmarks/bench_shard.py
