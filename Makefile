# Developer entry points.  PYTHONPATH=src everywhere: the package is
# run from the source tree, no install step needed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint sanitize-smoke verify bench bench-baseline bench-full

## tier-1 test suite (the gate every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## schedlint: determinism/contract static analysis over src/repro/
## (exit 0 = clean, 1 = findings, 2 = usage/internal error; see
## docs/static-analysis.md)
lint:
	$(PYTHON) -m repro.analysis.lint

## runtime invariant sanitizer: bug-injection tests plus one fig5
## smoke cell per scheduler under --sanitize
sanitize-smoke:
	$(PYTHON) -m pytest tests/test_sanitizer.py -q

## the full PR gate: static analysis, tier-1 tests, sanitizer smoke,
## and the simulator-performance regression check
verify: lint test sanitize-smoke bench

## simulator-performance benchmarks in smoke mode + regression gate:
## fails when any profile's events/sec is >2x below the recorded
## baseline (benchmarks/BENCH_baseline.json)
bench:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_simulator_performance.py -q
	$(PYTHON) benchmarks/check_bench.py

## re-record the smoke baseline after an intentional perf change
bench-baseline:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_simulator_performance.py -q
	cp benchmarks/BENCH_simulator.json benchmarks/BENCH_baseline.json
	@echo "baseline re-recorded"

## full-size benchmark profiles (slower, prints throughput)
bench-full:
	$(PYTHON) -m pytest benchmarks/test_simulator_performance.py -q
